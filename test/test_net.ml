(* lib/net tests: framing (unit + qcheck fuzz over random chunking),
   client/server loopback against the real engine (byte-identical with
   the stdio serve loop, deadlines, oversized frames, span nesting
   across the socket), the v2 binary codec (qcheck round-trips, decoder
   fuzz, byte-equivalence with the JSON answers for every registered
   model), pipelining (ordering, id restoration, v1 fallback, stale
   responses), and router hashing + failover + batch fan-out with a
   dying backend. *)

open Psph_net
module Obs = Psph_obs.Obs
module Jsonl = Psph_obs.Jsonl
module E = Psph_engine.Engine
module Serve = Psph_engine.Serve

let check = Alcotest.check

let fail = Alcotest.fail

let string, int, bool = Alcotest.(string, int, bool)

let option, list = Alcotest.(option, list)

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  m = 0 || go 0

let check_contains what line sub =
  if not (contains line sub) then
    fail (Printf.sprintf "%s: %S not found in %S" what sub line)

let loopback port = { Addr.host = "127.0.0.1"; port }

(* ------------------------------------------------------------------ *)
(* Addr                                                                *)
(* ------------------------------------------------------------------ *)

let addr_tests =
  [
    Alcotest.test_case "parse HOST:PORT" `Quick (fun () ->
        (match Addr.parse "127.0.0.1:8080" with
        | Ok a ->
            check string "host" "127.0.0.1" a.Addr.host;
            check int "port" 8080 a.Addr.port
        | Error m -> fail m);
        (match Addr.parse "somehost:0" with
        | Ok a -> check int "port 0 allowed" 0 a.Addr.port
        | Error m -> fail m);
        List.iter
          (fun s ->
            check bool (Printf.sprintf "%S rejected" s) true
              (Result.is_error (Addr.parse s)))
          [ "noport"; "h:"; ":80"; "h:abc"; "h:70000"; "h:-1" ]);
    Alcotest.test_case "to_string round-trips" `Quick (fun () ->
        match Addr.parse "10.0.0.1:443" with
        | Ok a -> check string "round-trip" "10.0.0.1:443" (Addr.to_string a)
        | Error m -> fail m);
  ]

(* ------------------------------------------------------------------ *)
(* Frame: unit                                                         *)
(* ------------------------------------------------------------------ *)

let drain r =
  let rec go acc =
    match Frame.next r with Some p -> go (p :: acc) | None -> List.rev acc
  in
  go []

let frame_tests =
  [
    Alcotest.test_case "encode/decode, byte-transparent" `Quick (fun () ->
        let payloads = [ ""; "{\"op\":\"stats\"}"; "with\nnewline\x00and nul" ] in
        let r = Frame.reader () in
        Frame.feed_string r (String.concat "" (List.map Frame.encode payloads));
        check (list string) "all frames" payloads (drain r);
        check int "clean boundary" 0 (Frame.pending r));
    Alcotest.test_case "byte-at-a-time feed" `Quick (fun () ->
        let wire = Frame.encode "slow" ^ Frame.encode "drip" in
        let r = Frame.reader () in
        String.iter (fun c -> Frame.feed_string r (String.make 1 c)) wire;
        check (list string) "frames" [ "slow"; "drip" ] (drain r));
    Alcotest.test_case "pending counts a torn frame" `Quick (fun () ->
        let wire = Frame.encode "abcdef" in
        let r = Frame.reader () in
        Frame.feed_string r (String.sub wire 0 7);
        check (option string) "incomplete" None (Frame.next r);
        check int "buffered bytes" 7 (Frame.pending r);
        Frame.feed_string r (String.sub wire 7 (String.length wire - 7));
        check (option string) "completed" (Some "abcdef") (Frame.next r);
        check int "boundary again" 0 (Frame.pending r));
    Alcotest.test_case "oversized encode refused" `Quick (fun () ->
        match Frame.encode ~max_frame:8 "123456789" with
        | _ -> fail "encode should have raised"
        | exception Frame.Oversized n -> check int "offending length" 9 n);
    Alcotest.test_case "oversized header poisons the reader" `Quick (fun () ->
        let r = Frame.reader ~max_frame:8 () in
        Frame.feed_string r (Frame.encode ~max_frame:8 "12345678");
        check (option string) "exactly max ok" (Some "12345678") (Frame.next r);
        (match Frame.feed_string r (Frame.encode "123456789") with
        | _ -> fail "oversized header should have raised"
        | exception Frame.Oversized n -> check int "advertised length" 9 n);
        (* the stream is desynced: even a well-formed frame re-raises *)
        match Frame.feed_string r (Frame.encode "ok") with
        | _ -> fail "poisoned reader should keep raising"
        | exception Frame.Oversized n -> check int "original length" 9 n);
    Alcotest.test_case "sign-bit length is oversized" `Quick (fun () ->
        let r = Frame.reader () in
        match Frame.feed_string r "\x80\x00\x00\x01x" with
        | _ -> fail "negative length should have raised"
        | exception Frame.Oversized _ -> ());
  ]

(* ------------------------------------------------------------------ *)
(* Frame: qcheck fuzz                                                  *)
(* ------------------------------------------------------------------ *)

let frame_props =
  let open QCheck2 in
  [
    Test.make ~name:"round-trip survives any chunking" ~count:300
      Gen.(pair (list_size (0 -- 8) (string_size (0 -- 300))) (1 -- 13))
      (fun (payloads, chunk) ->
        let wire = String.concat "" (List.map Frame.encode payloads) in
        let buf = Bytes.of_string wire in
        let r = Frame.reader () in
        let n = Bytes.length buf in
        let i = ref 0 in
        while !i < n do
          let len = min chunk (n - !i) in
          Frame.feed r buf !i len;
          i := !i + len
        done;
        drain r = payloads && Frame.pending r = 0);
    Test.make ~name:"torn frame completes on the next feed" ~count:300
      Gen.(pair (string_size (0 -- 200)) (0 -- 1000))
      (fun (payload, cut) ->
        let wire = Frame.encode payload in
        let k = cut mod String.length wire in
        let r = Frame.reader () in
        Frame.feed_string r (String.sub wire 0 k);
        let torn = Frame.next r = None && Frame.pending r = k in
        Frame.feed_string r (String.sub wire k (String.length wire - k));
        torn && Frame.next r = Some payload && Frame.pending r = 0);
    (* the chaos proxy's corruption mode in miniature: flip one byte
       anywhere in a valid multi-frame wire (length header or body).
       The reader may desync (wait forever for bytes that never come),
       deliver a different payload, or poison on an insane length — but
       it must never raise anything but Oversized and never loop *)
    Test.make ~name:"single-byte corruption: poison or desync, never a crash"
      ~count:500
      Gen.(
        tup4
          (list_size (1 -- 5) (string_size (0 -- 120)))
          nat nat (1 -- 13))
      (fun (payloads, bytepos, mask, chunk) ->
        let wire = String.concat "" (List.map Frame.encode payloads) in
        let buf = Bytes.of_string wire in
        let n = Bytes.length buf in
        let i = bytepos mod n in
        Bytes.set buf i
          (Char.chr (Char.code (Bytes.get buf i) lxor (1 + (mask mod 255))));
        let r = Frame.reader () in
        let off = ref 0 in
        let ok = ref true in
        (try
           while !off < n do
             let len = min chunk (n - !off) in
             (match Frame.feed r buf !off len with
             | () -> ()
             | exception Frame.Oversized _ -> () (* poisoned: legal *));
             off := !off + len
           done;
           let rec drain () =
             match Frame.next r with
             | Some _ -> drain ()
             | None -> ()
             | exception Frame.Oversized _ -> ()
           in
           drain ()
         with _ -> ok := false);
        !ok);
  ]
  |> List.map QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Client/Server loopback                                              *)
(* ------------------------------------------------------------------ *)

let with_server ?deadline_s ?max_frame ?dispatch handler f =
  match Server.listen ?deadline_s ?max_frame ?dispatch ~handler (loopback 0) with
  | Error m -> fail m
  | Ok srv ->
      Server.start srv;
      Fun.protect
        ~finally:(fun () -> Server.stop srv)
        (fun () -> f srv (loopback (Server.port srv)))

(* the engine server as [psc serve] runs it: binary codec installed *)
let with_v2_server ?metrics engine f =
  let handler = Serve.handle_line engine in
  match
    Server.listen ?metrics ~handler
      ~bin_handler:(Codec.handle ~json:handler engine)
      (loopback 0)
  with
  | Error m -> fail m
  | Ok srv ->
      Server.start srv;
      Fun.protect
        ~finally:(fun () -> Server.stop srv)
        (fun () -> f srv (loopback (Server.port srv)))

(* a faithful PR 5 server: one thread, strictly sequential frames, every
   payload (hello included) through the handler — for testing that v2
   clients negotiate down instead of assuming *)
let with_v1_server handler f =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen fd 8;
  let port =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> 0
  in
  let stop = Atomic.make false in
  let th =
    Thread.create
      (fun () ->
        while not (Atomic.get stop) do
          match Unix.accept fd with
          | cfd, _ ->
              let r = Frame.reader () in
              let buf = Bytes.create 4096 in
              (try
                 let rec loop () =
                   match Frame.next r with
                   | Some p ->
                       let out = Frame.encode (handler p) in
                       let n = String.length out in
                       let off = ref 0 in
                       while !off < n do
                         off :=
                           !off + Unix.write_substring cfd out !off (n - !off)
                       done;
                       loop ()
                   | None ->
                       let n = Unix.read cfd buf 0 (Bytes.length buf) in
                       if n > 0 then begin
                         Frame.feed r buf 0 n;
                         loop ()
                       end
                 in
                 loop ()
               with _ -> ());
              (try Unix.close cfd with _ -> ())
          | exception _ -> ()
        done)
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      (* closing fd won't interrupt a thread parked in accept; kick it
         awake with a throwaway connection instead *)
      (try
         let k = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
         (try
            Unix.connect k (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
          with _ -> ());
         try Unix.close k with _ -> ()
       with _ -> ());
      Thread.join th;
      try Unix.close fd with _ -> ())
    (fun () -> f (loopback port))

let with_client ?(timeout_ms = 5000) ?(retries = 1) ?(backoff_ms = 1) addr f =
  let c = Client.create ~timeout_ms ~retries ~backoff_ms addr in
  Fun.protect ~finally:(fun () -> Client.close c) (fun () -> f c)

let with_engine f =
  let engine = E.create ~domains:0 () in
  Fun.protect ~finally:(fun () -> E.shutdown engine) (fun () -> f engine)

let request_ok c line =
  match Client.request c line with
  | Ok resp -> resp
  | Error e -> fail (Client.error_message e)

(* a loopback port with nothing listening: bind to 0, read it back, close *)
let dead_port () =
  let s = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.bind s (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  let p =
    match Unix.getsockname s with Unix.ADDR_INET (_, p) -> p | _ -> 0
  in
  Unix.close s;
  p

let loopback_tests =
  [
    Alcotest.test_case "byte-identical with Serve.handle_line" `Quick (fun () ->
        with_engine @@ fun engine ->
        with_server (Serve.handle_line engine) @@ fun _srv addr ->
        with_client addr @@ fun c ->
        let line = {|{"op":"psph","n":2,"values":2,"id":7}|} in
        ignore (Serve.handle_line engine line);
        (* warm: both the direct call and the TCP one must now say cached *)
        let direct = Serve.handle_line engine line in
        let resp = request_ok c line in
        check string "same bytes over TCP" direct resp;
        check_contains "success" resp {|"ok":true|};
        check_contains "warm" resp {|"cached":true|};
        check_contains "id echoed" resp {|"id":7|});
    Alcotest.test_case "keep-alive: many ops on one connection" `Quick
      (fun () ->
        with_engine @@ fun engine ->
        with_server (Serve.handle_line engine) @@ fun _srv addr ->
        with_client addr @@ fun c ->
        check_contains "models op" (request_ok c {|{"op":"models"}|}) "async";
        check_contains "bad op is a response, not an error"
          (request_ok c {|{"op":"nope","id":1}|})
          {|"ok":false|};
        check_contains "betti after an error"
          (request_ok c {|{"op":"betti","facets":["0:i0 ; 1:i1"]}|})
          {|"betti":|});
    Alcotest.test_case "deadline exceeded answers an error" `Quick (fun () ->
        with_server ~deadline_s:0.005
          (fun _ ->
            Thread.delay 0.05;
            {|{"ok":true,"late":true}|})
        @@ fun _srv addr ->
        with_client addr @@ fun c ->
        let resp = request_ok c {|{"op":"x","id":9}|} in
        check_contains "deadline error" resp "deadline exceeded";
        check_contains "id echoed" resp {|"id":9|});
    Alcotest.test_case "oversized request answered, then reconnect" `Quick
      (fun () ->
        with_server ~max_frame:128 (fun _ -> "pong") @@ fun _srv addr ->
        with_client addr @@ fun c ->
        let big = String.make 300 'x' in
        let resp = request_ok c big in
        check_contains "rejected" resp "frame too large";
        (* the server hung up after the framing error; the client must
           reconnect transparently on the next request *)
        check string "back in business" "pong" (request_ok c "ping"));
    Alcotest.test_case "connect refused is retryable, not fatal" `Quick
      (fun () ->
        with_client ~timeout_ms:500 ~retries:2 (loopback (dead_port ()))
        @@ fun c ->
        match Client.request c {|{"op":"stats"}|} with
        | Ok _ -> fail "nothing was listening"
        | Error e ->
            check bool "retryable" true (Client.is_retryable e);
            check bool "protocol errors are fatal" false
              (Client.is_retryable (Client.Protocol "x")));
    Alcotest.test_case "stop drains past a full connection pool" `Quick
      (fun () ->
        (* with max_conns idle peers the accept loop is parked in its
           capacity wait; stop must still reach the drain path and
           return rather than deadlock *)
        match Server.listen ~max_conns:1 ~handler:(fun _ -> "x") (loopback 0)
        with
        | Error m -> fail m
        | Ok srv ->
            Server.start srv;
            let fd =
              Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0
            in
            Fun.protect ~finally:(fun () -> try Unix.close fd with _ -> ())
            @@ fun () ->
            Unix.connect fd
              (Unix.ADDR_INET (Unix.inet_addr_loopback, Server.port srv));
            (* give the accept loop time to take the connection and park *)
            Thread.delay 0.2;
            Server.stop srv);
    Alcotest.test_case "spans nest across the socket" `Quick (fun () ->
        with_engine @@ fun engine ->
        with_server (Serve.handle_line engine) @@ fun _srv addr ->
        with_client addr @@ fun c ->
        Fun.protect ~finally:(fun () -> Obs.set_sink Obs.Null) @@ fun () ->
        Obs.set_sink Obs.Memory;
        Obs.clear_records ();
        ignore (request_ok c {|{"op":"psph","n":1,"values":1}|});
        Obs.set_sink Obs.Null;
        let span name =
          List.find_map
            (function
              | Obs.Span_record { name = n; id; parent; _ } when n = name ->
                  Some (id, parent)
              | _ -> None)
            (Obs.records ())
        in
        match
          (span "net.client.request", span "serve.request", span "engine.query")
        with
        | Some (cid, croot), Some (sid, sparent), Some (_, qparent) ->
            check (option int) "client span is the root" None croot;
            check (option int) "serve.request under net.client.request"
              (Some cid) sparent;
            check (option int) "engine.query under serve.request" (Some sid)
              qparent
        | c', s', q' ->
            fail
              (Printf.sprintf "missing spans: client=%b serve=%b query=%b"
                 (c' <> None) (s' <> None) (q' <> None)));
  ]

(* ------------------------------------------------------------------ *)
(* Codec: qcheck round-trips and decoder fuzz                          *)
(* ------------------------------------------------------------------ *)

module MC = Pseudosphere.Model_complex

let gen_request =
  let open QCheck2.Gen in
  let want = oneofl [ Codec.Both; Codec.Betti; Codec.Connectivity ] in
  let psph =
    map2 (fun n values -> Codec.Psph { n; values }) (0 -- 0xffff) (0 -- 0xffff)
  in
  let facets =
    map (fun fs -> Codec.Facets fs) (list_size (0 -- 5) (string_size (0 -- 40)))
  in
  let model =
    let field = 0 -- 0xffff in
    let ext =
      list_size (0 -- 3)
        (pair (string_size ~gen:(char_range 'a' 'z') (1 -- 8)) field)
    in
    map3
      (fun model (n, (f, (k, (p, r)))) ext ->
        Codec.Model { model; spec = { MC.n; f; k; p; r; ext } })
      (string_size ~gen:(char_range 'a' 'z') (1 -- 10))
      (pair field (pair field (pair field (pair field field))))
      ext
  in
  map3
    (fun id want query -> { Codec.id; want; query })
    (0 -- Codec.max_id) want
    (oneof [ psph; facets; model ])

let gen_provenance =
  let open QCheck2.Gen in
  map
    (fun (tier, (rule, (steps, (cells_removed, checked)))) ->
      { E.tier; rule; steps; cells_removed; checked })
    (pair
       (oneofl [ E.Cached; E.Symbolic; E.Numeric ])
       (pair
          (option (string_size (0 -- 40)))
          (pair
             (option (int_range 0 0xFFFFFFFF))
             (pair
                (option (int_range 0 0xFFFFFFFF))
                (option (int_range (-0x80000000) 0x7FFFFFFF))))))

let gen_reply =
  let open QCheck2.Gen in
  let id = 0 -- Codec.max_id in
  let result =
    map
      (fun (id, (key, (cached, (betti, (connectivity, solver))))) ->
        Codec.Result { id; key; cached; betti; connectivity; solver })
      (pair id
         (pair (string_size (0 -- 64))
            (pair bool
               (pair
                  (option
                     (map Array.of_list
                        (list_size (0 -- 6) (int_range 0 0xFFFFFFFF))))
                  (pair
                     (option (int_range (-0x80000000) 0x7FFFFFFF))
                     (option gen_provenance))))))
  in
  let failed =
    map2 (fun id message -> Codec.Failed { id; message }) id (string_size (0 -- 80))
  in
  oneof [ result; failed ]

let codec_props =
  let open QCheck2 in
  [
    Test.make ~name:"requests round-trip through the wire" ~count:500
      gen_request (fun r -> Codec.decode_request (Codec.encode_request r) = Ok r);
    Test.make ~name:"request_with_id = a fresh encode with that id" ~count:200
      Gen.(pair gen_request (0 -- Codec.max_id))
      (fun (r, id) ->
        Codec.request_with_id (Codec.encode_request r) id
        = Codec.encode_request { r with Codec.id = id });
    Test.make ~name:"replies round-trip through the wire" ~count:500 gen_reply
      (fun r -> Codec.decode_reply (Codec.encode_reply r) = Ok r);
    Test.make ~name:"truncated requests decode to Error, never raise"
      ~count:300
      Gen.(pair gen_request (0 -- 1000))
      (fun (r, cut) ->
        let wire = Codec.encode_request r in
        let k = cut mod String.length wire in
        match Codec.decode_request (String.sub wire 0 k) with
        | Ok _ -> false
        | Error _ -> true);
    Test.make ~name:"garbage decodes to Error or Ok, never raises" ~count:500
      Gen.(string_size (0 -- 64))
      (fun s ->
        (match Codec.decode_request s with Ok _ | Error _ -> true)
        && match Codec.decode_reply s with Ok _ | Error _ -> true);
    Test.make ~name:"json escape hatch round-trips" ~count:200
      Gen.(string_size (0 -- 80))
      (fun s ->
        Codec.unescape_json (Codec.escape_json s) = Some s
        && Codec.unescape_json
             (Codec.encode_reply (Codec.Failed { id = 1; message = s }))
           = None);
  ]
  |> List.map QCheck_alcotest.to_alcotest

let codec_tests =
  [
    Alcotest.test_case "binary answers byte-equivalent to JSON, every model"
      `Quick
      (fun () ->
        with_engine @@ fun engine ->
        let json = Serve.handle_line engine in
        let bin = Codec.handle ~json engine in
        (* only want/query pairs JSON requests can express: psph and
           model answer both measurements, facets split by op *)
        let cases =
          (Codec.Both, Codec.Psph { n = 2; values = 2 })
          :: (Codec.Betti, Codec.Facets [ "0:i0 ; 1:i1" ])
          :: (Codec.Connectivity,
              Codec.Facets [ "0:i0 ; 1:i1"; "1:i1 ; 2:i0" ])
          :: (Codec.Both,
              Codec.Model { model = "nope"; spec = MC.default_spec })
          :: List.map
               (fun name ->
                 ( Codec.Both,
                   Codec.Model
                     { model = name; spec = { MC.default_spec with n = 2 } } ))
               (MC.names ())
        in
        List.iteri
          (fun i (want, query) ->
            let id = Jsonl.int (100 + i) in
            let jline = Codec.json_line_of_query ~id want query in
            (* warm first, so both sides agree on the cached flag *)
            ignore (json jline);
            let expect = json jline in
            let breq = Codec.encode_request { Codec.id = 100 + i; want; query } in
            match Codec.decode_reply (bin breq) with
            | Error m -> fail m
            | Ok reply ->
                check string
                  (Printf.sprintf "case %d: %s" i jline)
                  expect
                  (Codec.json_of_reply ~id:(Some id) reply))
          cases);
    Alcotest.test_case "corrupt binary request answered in kind" `Quick
      (fun () ->
        with_engine @@ fun engine ->
        let bin = Codec.handle ~json:(Serve.handle_line engine) engine in
        (* tag says facets, payload lies about its entry count *)
        let resp = bin "\x02\x00\x00\x00\x07\x00\x00\x09" in
        match Codec.decode_reply resp with
        | Ok (Codec.Failed { id = 7; message }) ->
            check_contains "names the decode failure" message "bad request"
        | Ok _ -> fail "expected a Failed reply addressed to id 7"
        | Error m -> fail ("reply must stay well-formed: " ^ m));
  ]

(* ------------------------------------------------------------------ *)
(* Pipelining (wire protocol v2 end to end)                            *)
(* ------------------------------------------------------------------ *)

let pipeline_tests =
  [
    Alcotest.test_case "pipelined responses keep order, bytes and ids" `Quick
      (fun () ->
        with_engine @@ fun engine ->
        with_v2_server ~metrics:"t.psrv" engine @@ fun _srv addr ->
        let lines =
          [
            {|{"op":"psph","n":1,"values":2,"id":1}|};
            {|{"op":"psph","n":2,"values":2}|};
            {|{"op":"models"}|};
            {|{"op":"betti","facets":["0:i0 ; 1:i1"],"id":"mine"}|};
            {|{"op":"psph","n":1,"values":3,"id":42}|};
          ]
        in
        (* warm, so repeat answers are byte-deterministic *)
        List.iter (fun l -> ignore (Serve.handle_line engine l)) lines;
        let expect = List.map (Serve.handle_line engine) lines in
        List.iter
          (fun (codec, label) ->
            let c = Client.create ~retries:1 ~codec ~pipeline_depth:3 addr in
            Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
            let got =
              List.map
                (function
                  | Ok s -> s
                  | Error e -> fail (label ^ ": " ^ Client.error_message e))
                (Client.pipeline c lines)
            in
            List.iteri
              (fun i (e, g) ->
                check string (Printf.sprintf "%s line %d" label i) e g)
              (List.combine expect got))
          [ (`Json, "json"); (`Binary, "binary") ];
        (* the binary client's 5 frames (4 hot + the models escape) all
           rode the binary codec; the json client's none did *)
        check int "binary requests seen by the server" 5
          (Obs.counter_value (Obs.counter "t.psrv.binary_requests")));
    Alcotest.test_case "v2 client negotiates down against a v1 server" `Quick
      (fun () ->
        with_engine @@ fun engine ->
        ignore (Serve.handle_line engine {|{"op":"psph","n":1,"values":2}|});
        with_v1_server (Serve.handle_line engine) @@ fun addr ->
        let c =
          Client.create ~metrics:"t.fallback" ~retries:1 ~codec:`Binary
            ~pipeline_depth:4 addr
        in
        Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
        let lines =
          [ {|{"op":"psph","n":1,"values":2,"id":8}|}; {|{"op":"models"}|} ]
        in
        let expect = List.map (Serve.handle_line engine) lines in
        let got =
          List.map
            (function
              | Ok s -> s
              | Error e -> fail (Client.error_message e))
            (Client.pipeline c lines)
        in
        List.iteri
          (fun i (e, g) -> check string (Printf.sprintf "line %d" i) e g)
          (List.combine expect got);
        check int "nothing was windowed" 0
          (Obs.counter_value (Obs.counter "t.fallback.pipelined")));
    Alcotest.test_case "eval_many: structured replies, JSON fallback in-range"
      `Quick
      (fun () ->
        with_engine @@ fun engine ->
        with_v2_server engine @@ fun _srv addr ->
        let c =
          Client.create ~retries:1 ~codec:`Binary ~pipeline_depth:4 addr
        in
        Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
        let psph = Codec.Psph { n = 2; values = 2 } in
        let rs =
          Client.eval_many c
            [
              (Codec.Both, psph);
              (Codec.Betti, psph);
              (Codec.Connectivity, psph);
              (* name too long for the codec: rides the JSON escape and
                 still comes back as a structured reply *)
              ( Codec.Both,
                Codec.Model { model = String.make 300 'z'; spec = MC.default_spec } );
            ]
        in
        match rs with
        | [ Ok (Codec.Result a); Ok (Codec.Result b); Ok (Codec.Result d);
            Ok (Codec.Failed { message; _ }) ] ->
            check bool "both: betti present" true (a.betti <> None);
            check bool "both: connectivity present" true (a.connectivity <> None);
            check bool "betti-only: no connectivity" true (b.connectivity = None);
            check bool "betti-only: betti present" true (b.betti <> None);
            check bool "connectivity-only: no betti" true (d.betti = None);
            check (option (list int)) "same betti both ways"
              (Option.map Array.to_list a.betti)
              (Option.map Array.to_list b.betti);
            check string "same key" a.key d.key;
            check_contains "fallback answered by serve" message "model"
        | rs ->
            fail
              (Printf.sprintf "unexpected shapes (%d results)" (List.length rs)));
    Alcotest.test_case
      "timed-out response dropped and counted, connection kept" `Quick
      (fun () ->
        (* handler echoes the transport id; n=9 marks the slow request.
           dispatch threads keep the slow handler from blocking the fast
           one, so the fast response overtakes it on the wire *)
        let handler line =
          let id =
            match Jsonl.of_string_opt line with
            | Some o -> Option.value ~default:Jsonl.Null (Jsonl.member "id" o)
            | None -> Jsonl.Null
          in
          if contains line {|"n":9|} then Thread.delay 0.6;
          Jsonl.to_string (Jsonl.Obj [ ("id", id); ("ok", Jsonl.Bool true) ])
        in
        with_server ~dispatch:(fun job -> ignore (Thread.create job ())) handler
        @@ fun _srv addr ->
        let c =
          Client.create ~metrics:"t.stale" ~timeout_ms:150 ~retries:0
            ~backoff_ms:1 ~pipeline_depth:2 addr
        in
        Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
        let slow = {|{"op":"psph","n":9,"values":1}|} in
        let fast = {|{"op":"psph","n":1,"values":1}|} in
        (match Client.pipeline c [ slow; fast ] with
        | [ Error Client.Timeout; Ok fast_resp ] ->
            check_contains "fast one answered" fast_resp {|"ok":true|}
        | [ a; b ] ->
            let show = function
              | Ok s -> "Ok " ^ s
              | Error e -> "Error " ^ Client.error_message e
            in
            fail (Printf.sprintf "slow=%s fast=%s" (show a) (show b))
        | _ -> fail "wrong arity");
        (* let the late response land in the socket buffer, then pump
           again: it must be discarded, not delivered to the new request *)
        Thread.delay 0.7;
        (match Client.pipeline c [ fast ] with
        | [ Ok resp ] -> check_contains "new request unconfused" resp {|"ok":true|}
        | _ -> fail "retry after stale should succeed");
        check int "stale response counted" 1
          (Obs.counter_value (Obs.counter "t.stale.stale_response"));
        check int "the connection survived both" 1
          (Obs.counter_value (Obs.counter "t.stale.reconnects")));
  ]

(* ------------------------------------------------------------------ *)
(* Reset taxonomy (the chaos proxy's reset mode in miniature)          *)
(* ------------------------------------------------------------------ *)

(* a server whose first connection is hard-closed with SO_LINGER 0 (so
   the kernel sends RST, not FIN) after the request arrives — the
   client sees ECONNRESET mid-request — and whose later connections
   answer properly, so a retry can succeed *)
let with_reset_then_ok_server f =
  let lfd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lfd Unix.SO_REUSEADDR true;
  Unix.bind lfd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen lfd 8;
  let port =
    match Unix.getsockname lfd with Unix.ADDR_INET (_, p) -> p | _ -> 0
  in
  let stop = Atomic.make false in
  let th =
    Thread.create
      (fun () ->
        let first = ref true in
        while not (Atomic.get stop) do
          match Unix.accept lfd with
          | exception Unix.Unix_error _ -> Atomic.set stop true
          | c, _ ->
              if !first then begin
                first := false;
                ignore
                  (try Unix.read c (Bytes.create 256) 0 256
                   with Unix.Unix_error _ -> 0);
                (try Unix.setsockopt_optint c Unix.SO_LINGER (Some 0)
                 with Unix.Unix_error _ -> ());
                try Unix.close c with Unix.Unix_error _ -> ()
              end
              else begin
                let r = Frame.reader () in
                let buf = Bytes.create 4096 in
                let rec req () =
                  match Frame.next r with
                  | Some p -> Some p
                  | None ->
                      let n = Unix.read c buf 0 (Bytes.length buf) in
                      if n = 0 then None
                      else begin
                        Frame.feed r buf 0 n;
                        req ()
                      end
                in
                (try
                   match req () with
                   | Some _ ->
                       let resp =
                         Frame.encode {|{"ok":true,"reborn":true}|}
                       in
                       ignore
                         (Unix.write_substring c resp 0 (String.length resp))
                   | None -> ()
                 with Unix.Unix_error _ -> ());
                try Unix.close c with Unix.Unix_error _ -> ()
              end
        done)
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      (try Unix.shutdown lfd Unix.SHUTDOWN_ALL with Unix.Unix_error _ -> ());
      (try Unix.close lfd with Unix.Unix_error _ -> ());
      Thread.join th)
    (fun () -> f (loopback port))

let reset_tests =
  [
    Alcotest.test_case "ECONNRESET mid-request is a named retryable failure"
      `Quick
      (fun () ->
        with_reset_then_ok_server @@ fun addr ->
        let c = Client.create ~timeout_ms:2000 ~retries:0 addr in
        (match Client.request c {|{"op":"ping"}|} with
        | Ok r -> fail ("expected a reset, got " ^ r)
        | Error e -> (
            check bool "classified retryable" true (Client.is_retryable e);
            match e with
            | Client.Connection m ->
                check_contains "names the reset family" m
                  "reset by peer mid-request"
            | Client.Timeout | Client.Protocol _ ->
                fail
                  ("expected a Connection error, got "
                  ^ Client.error_message e)));
        Client.close c);
    Alcotest.test_case "a retry rides a fresh connection past the reset"
      `Quick
      (fun () ->
        with_reset_then_ok_server @@ fun addr ->
        let c = Client.create ~timeout_ms:2000 ~retries:2 addr in
        (match Client.request c {|{"op":"ping"}|} with
        | Ok r -> check_contains "second connection answered" r "reborn"
        | Error e -> fail (Client.error_message e));
        Client.close c);
  ]

(* ------------------------------------------------------------------ *)
(* Router                                                              *)
(* ------------------------------------------------------------------ *)

let mk_router ?(retries = 0) ports =
  Router.create ~timeout_ms:2000 ~retries ~check_period_ms:3600_000
    (List.map loopback ports)

let router_tests =
  [
    Alcotest.test_case "shard keys canonicalize like the engine" `Quick
      (fun () ->
        check (option string) "psph by parameters"
          (Some "psph:2:3")
          (Router.shard_key {|{"op":"psph","n":2,"values":3}|});
        (* async normalizes k and p away: requests differing only in
           parameters the model ignores must land on the same backend *)
        check (option string) "model params the model ignores"
          (Router.shard_key {|{"op":"model-complex","model":"async","n":2,"k":1}|})
          (Router.shard_key {|{"op":"model-complex","model":"async","n":2,"k":5,"p":9}|});
        (* explicit complexes shard by content address, so facet order
           and the betti/connectivity split don't matter *)
        let k1 =
          Router.shard_key {|{"op":"betti","facets":["0:i0 ; 1:i1","1:i1 ; 2:i0"]}|}
        in
        check (option string) "facet order irrelevant" k1
          (Router.shard_key
             {|{"op":"connectivity","facets":["1:i1 ; 2:i0","0:i0 ; 1:i1"]}|});
        check bool "content-addressed" true
          (match k1 with Some s -> String.length s > 4 && String.sub s 0 4 = "key:" | None -> false);
        check (option string) "stats has no affinity" None
          (Router.shard_key {|{"op":"stats"}|});
        check (option string) "garbage has no affinity" None
          (Router.shard_key "not json"));
    Alcotest.test_case "preference is deterministic and stable" `Quick
      (fun () ->
        let r3 = mk_router [ 6401; 6402; 6403 ] in
        let r2 = mk_router [ 6401; 6402 ] in
        Fun.protect
          ~finally:(fun () -> Router.stop r3; Router.stop r2)
        @@ fun () ->
        let lines =
          List.init 60 (fun i ->
              Printf.sprintf {|{"op":"psph","n":%d,"values":%d}|} (i mod 6)
                (i / 6))
        in
        List.iter
          (fun line ->
            let p = Router.preference r3 line in
            check (list int) "deterministic" p (Router.preference r3 line);
            check (list int) "a permutation of all backends"
              (List.sort compare p) [ 0; 1; 2 ];
            (* consistent hashing: dropping backend 2 must not move keys
               whose first choice was backend 0 or 1 *)
            let hd3 = List.hd p in
            if hd3 < 2 then
              check int "survivors keep their keys" hd3
                (List.hd (Router.preference r2 line)))
          lines;
        (* keyless requests rotate rather than pile on one backend *)
        let heads =
          List.init 3 (fun _ ->
              List.hd (Router.preference r3 {|{"op":"stats"}|}))
        in
        check (list int) "round-robin" [ 0; 1; 2 ]
          (List.sort compare heads));
    Alcotest.test_case "empty backend list refused" `Quick (fun () ->
        match Router.create [] with
        | _ -> fail "should have raised"
        | exception Invalid_argument _ -> ());
    Alcotest.test_case "protocol error doesn't poison backend health" `Quick
      (fun () ->
        (* a response over the router client's max_frame is a fatal
           Protocol error, but it's the *request* that's bad: the router
           must answer with the error and keep the backend alive *)
        with_server
          (fun line ->
            if contains line "big" then String.make 4096 'x'
            else {|{"ok":true}|})
        @@ fun _srv addr ->
        let r =
          Router.create ~timeout_ms:2000 ~retries:0 ~check_period_ms:3600_000
            ~max_frame:128
            [ loopback addr.Addr.port ]
        in
        Fun.protect ~finally:(fun () -> Router.stop r) @@ fun () ->
        let resp = Router.route r {|{"op":"big","id":4}|} in
        check_contains "answers the protocol error" resp {|"ok":false|};
        check_contains "names the failure" resp "oversized";
        check_contains "id still echoed" resp {|"id":4|};
        check bool "backend still marked alive" true
          (snd (List.hd (Router.backends r)));
        check_contains "well-sized requests keep flowing"
          (Router.route r {|{"op":"ok"}|})
          {|"ok":true|});
    Alcotest.test_case "failover when a backend dies" `Quick (fun () ->
        with_engine @@ fun engine ->
        with_server (Serve.handle_line engine) @@ fun srv1 a1 ->
        with_server (Serve.handle_line engine) @@ fun srv2 a2 ->
        let r = mk_router [ a1.Addr.port; a2.Addr.port ] in
        Fun.protect ~finally:(fun () -> Router.stop r) @@ fun () ->
        let line = {|{"op":"psph","n":1,"values":2,"id":3}|} in
        check_contains "routes while all alive" (Router.route r line)
          {|"ok":true|};
        (* kill exactly the backend this key prefers, so the reroute is a
           real failover and not a lucky hash *)
        let first = List.hd (Router.preference r line) in
        Server.stop (if first = 0 then srv1 else srv2);
        let resp = Router.route r line in
        check_contains "survivor answers" resp {|"ok":true|};
        check bool "dead backend marked down" false
          (snd (List.nth (Router.backends r) first));
        Server.stop (if first = 0 then srv2 else srv1);
        let degraded = Router.route r line in
        check_contains "degrades, never crashes" degraded "no backend";
        check_contains "id still echoed" degraded {|"id":3|});
    Alcotest.test_case "all-hot batch fans out byte-identically" `Quick
      (fun () ->
        with_engine @@ fun engine ->
        with_v2_server engine @@ fun srv1 a1 ->
        with_v2_server engine @@ fun _srv2 a2 ->
        let r =
          Router.create ~metrics:"t.fan" ~timeout_ms:2000 ~retries:0
            ~check_period_ms:3600_000 ~codec:`Binary ~pipeline_depth:8
            [ a1; a2 ]
        in
        Fun.protect ~finally:(fun () -> Router.stop r) @@ fun () ->
        let batch =
          {|{"op":"batch","requests":[{"op":"psph","n":1,"values":2,"id":"mine"},{"op":"psph","n":2,"values":2},{"op":"betti","facets":["0:i0 ; 1:i1"],"id":5},{"op":"model-complex","model":"async","n":2}]}|}
        in
        ignore (Serve.handle_line engine batch);
        (* warm, so every member answers cached on any backend *)
        let expect = Serve.handle_line engine batch in
        check string "fanned answer = single-backend answer" expect
          (Router.route r batch);
        check int "fanout counted" 1
          (Obs.counter_value (Obs.counter "t.fan.fanout"));
        (* kill one backend: failover is per member, bytes unchanged *)
        Server.stop srv1;
        check string "per-member failover keeps the bytes" expect
          (Router.route r batch);
        (* a member without a binary layout keeps forward-whole routing *)
        let mixed =
          {|{"op":"batch","requests":[{"op":"psph","n":1,"values":2},{"op":"models"}]}|}
        in
        check_contains "mixed batch forwarded whole" (Router.route r mixed)
          {|"ok":true|};
        check int "mixed batch did not fan" 2
          (Obs.counter_value (Obs.counter "t.fan.fanout")));
  ]

(* ------------------------------------------------------------------ *)
(* Ring: replica placement as qcheck laws                              *)
(* ------------------------------------------------------------------ *)

let ring_props =
  let open QCheck2 in
  let gen_names =
    Gen.(
      map2
        (fun salt n -> List.init n (fun i -> Printf.sprintf "b%d-%d" salt i))
        (0 -- 1000) (2 -- 8))
  in
  let gen_key = Gen.(string_size (1 -- 24)) in
  [
    Test.make ~name:"owners: min r n distinct physical nodes" ~count:200
      Gen.(pair gen_names (pair (1 -- 4) gen_key))
      (fun (names, (r, key)) ->
        let t = Ring.make ~vnodes:16 names in
        let os = Ring.owners t ~r key in
        List.length os = min r (List.length names)
        && List.length (List.sort_uniq compare os) = List.length os
        && List.for_all (fun i -> i >= 0 && i < List.length names) os);
    Test.make ~name:"join: a key keeps its primary or moves to the joiner"
      ~count:200
      Gen.(pair gen_names gen_key)
      (fun (names, key) ->
        let t = Ring.make ~vnodes:16 names in
        let t' = Ring.add t "joiner" in
        let p = List.hd (Ring.order t key) in
        let p' = List.hd (Ring.order t' key) in
        p' = p || p' = Ring.size t);
    Test.make ~name:"add = make on the appended list" ~count:200
      Gen.(pair gen_names gen_key)
      (fun (names, key) ->
        let a = Ring.add (Ring.make ~vnodes:16 names) "joiner" in
        let m = Ring.make ~vnodes:16 (names @ [ "joiner" ]) in
        Ring.order a key = Ring.order m key);
    Test.make ~name:"leave: erases only the victim from every walk" ~count:200
      Gen.(pair gen_names (pair (0 -- 7) gen_key))
      (fun (names, (vi, key)) ->
        let victim = List.nth names (vi mod List.length names) in
        let rest = List.filter (fun n -> n <> victim) names in
        let full = Ring.make ~vnodes:16 names in
        let sub = Ring.make ~vnodes:16 rest in
        let names_of t = List.map (Ring.name t) (Ring.order t key) in
        names_of sub = List.filter (fun n -> n <> victim) (names_of full));
  ]
  |> List.map QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Replica: snapshot/populate wire ops, cache warming                  *)
(* ------------------------------------------------------------------ *)

let rec poll ?(timeout = 5.0) ?(every = 0.02) cond =
  cond ()
  || timeout > 0.
     && begin
          Thread.delay every;
          poll ~timeout:(timeout -. every) ~every cond
        end

(* distinct cheap queries that each leave one store entry *)
let warm_queries k =
  List.init k (fun i ->
      Printf.sprintf {|{"op":"psph","n":%d,"values":%d}|}
        (1 + (i mod 3)) (1 + (i / 3)))

let replica_tests =
  [
    Alcotest.test_case "snapshot pages the store out; populate loads it in"
      `Quick
      (fun () ->
        with_engine @@ fun a ->
        List.iter (fun q -> ignore (Serve.handle_line a q)) (warm_queries 5);
        let total = List.length (E.snapshot a) in
        check bool "store has entries" true (total >= 5);
        let rec page cursor acc =
          let resp =
            Serve.handle_line a
              (Printf.sprintf {|{"op":"snapshot","cursor":%d,"limit":2}|} cursor)
          in
          let o =
            match Jsonl.of_string_opt resp with
            | Some o -> o
            | None -> fail ("unparseable: " ^ resp)
          in
          check bool "ok" true (Jsonl.member "ok" o = Some (Jsonl.Bool true));
          let entries =
            match Jsonl.member "entries" o with
            | Some (Jsonl.Arr xs) ->
                List.map
                  (function Jsonl.Str s -> s | _ -> fail "non-string entry")
                  xs
            | _ -> fail ("no entries: " ^ resp)
          in
          check bool "chunked" true (List.length entries <= 2);
          let next =
            match Option.bind (Jsonl.member "next" o) Jsonl.to_int_opt with
            | Some n -> n
            | None -> fail ("no next cursor: " ^ resp)
          in
          if Jsonl.member "done" o = Some (Jsonl.Bool true) then acc @ entries
          else page next (acc @ entries)
        in
        let entry_lines = page 0 [] in
        check int "every entry paged" total (List.length entry_lines);
        check int "no duplicates" total
          (List.length (List.sort_uniq compare entry_lines));
        with_engine @@ fun b ->
        let presp =
          Serve.handle_line b
            (Printf.sprintf {|{"op":"populate","entries":[%s],"id":3}|}
               (String.concat ","
                  (List.map (fun l -> Printf.sprintf "%S" l) entry_lines)))
        in
        check_contains "populate ok" presp {|"ok":true|};
        check_contains "loaded count" presp
          (Printf.sprintf {|"loaded":%d|} total);
        check_contains "id echoed" presp {|"id":3|};
        check_contains "warm after populate"
          (Serve.handle_line b (List.hd (warm_queries 1)))
          {|"cached":true|};
        check_contains "malformed entries skipped, not fatal"
          (Serve.handle_line b {|{"op":"populate","entries":["not a store line"]}|})
          {|"skipped":1|});
    Alcotest.test_case "entry_of_response reads answers, rejects the rest"
      `Quick
      (fun () ->
        with_engine @@ fun e ->
        let resp =
          Serve.handle_line e {|{"op":"betti","facets":["0:i0 ; 1:i1"]}|}
        in
        (match Replica.entry_of_response resp with
        | Some (key, _) ->
            check bool "key is the stored one" true
              (List.mem_assoc key (E.snapshot e))
        | None -> fail ("no entry from " ^ resp));
        check bool "errors carry no entry" true
          (Replica.entry_of_response {|{"ok":false,"error":"x"}|} = None);
        check bool "bare connectivity under-determines the entry" true
          (Replica.entry_of_response
             (Serve.handle_line e
                {|{"op":"connectivity","facets":["0:i0 ; 1:i1"]}|})
          = None));
    Alcotest.test_case "warm_from streams a peer's cache over TCP" `Quick
      (fun () ->
        with_engine @@ fun a ->
        List.iter (fun q -> ignore (Serve.handle_line a q)) (warm_queries 3);
        ignore (Serve.handle_line a {|{"op":"betti","facets":["0:i0 ; 1:i1"]}|});
        let total = List.length (E.snapshot a) in
        with_v2_server a @@ fun _srv addr ->
        with_engine @@ fun b ->
        (match Replica.warm_from ~metrics:"t.warm" ~chunk:2 b addr with
        | Ok n -> check int "all entries streamed" total n
        | Error m -> fail m);
        check_contains "psph answers warm"
          (Serve.handle_line b (List.hd (warm_queries 1)))
          {|"cached":true|};
        check_contains "betti answers warm"
          (Serve.handle_line b {|{"op":"betti","facets":["0:i0 ; 1:i1"]}|})
          {|"cached":true|};
        check bool "warm_entries counted" true
          (Obs.counter_value (Obs.counter "t.warm.warm_entries") >= total);
        (* unreachable peer: an Error, never an exception *)
        match
          Replica.warm_from ~timeout_ms:200 ~retries:0 b
            (loopback (dead_port ()))
        with
        | Ok _ -> fail "nothing was listening"
        | Error _ -> ());
    Alcotest.test_case "hint queue overflow drops (counted), then drains"
      `Quick
      (fun () ->
        (* a full queue must refuse the hint — never backpressure the
           request path — and the worker must drain normally afterwards *)
        let t = Replica.create ~metrics:"t.ovf" ~queue_cap:2 () in
        let m = Mutex.create () and c = Condition.create () in
        let worker_busy = ref false and release = ref false and ran = ref 0 in
        let gate () =
          Mutex.lock m;
          worker_busy := true;
          Condition.broadcast c;
          while not !release do
            Condition.wait c m
          done;
          incr ran;
          Mutex.unlock m
        in
        let quick () =
          Mutex.lock m;
          incr ran;
          Mutex.unlock m
        in
        check bool "gate job accepted" true (Replica.async t gate);
        (* wait until the worker holds the gate job, so the queue is empty *)
        Mutex.lock m;
        while not !worker_busy do
          Condition.wait c m
        done;
        Mutex.unlock m;
        check bool "fills slot 1" true (Replica.async t quick);
        check bool "fills slot 2" true (Replica.async t quick);
        check bool "overflow refused, not queued" false (Replica.async t quick);
        check int "drop counted" 1
          (Obs.counter_value (Obs.counter "t.ovf.populate_drop"));
        check int "accepted hints counted" 3
          (Obs.counter_value (Obs.counter "t.ovf.populate"));
        Mutex.lock m;
        release := true;
        Condition.broadcast c;
        Mutex.unlock m;
        check bool "worker drains the burst" true
          (poll (fun () ->
               Mutex.lock m;
               let n = !ran in
               Mutex.unlock m;
               n = 3));
        Replica.stop t;
        check bool "stopped queue refuses" false (Replica.async t quick);
        check int "stopped drop counted" 2
          (Obs.counter_value (Obs.counter "t.ovf.populate_drop")));
  ]

(* ------------------------------------------------------------------ *)
(* Cluster: replication, fallback, join/rebalance, backpressure        *)
(* ------------------------------------------------------------------ *)

let cluster_tests =
  [
    Alcotest.test_case "R=2: a miss populates the replica; failover hits warm"
      `Quick
      (fun () ->
        with_engine @@ fun e1 ->
        with_engine @@ fun e2 ->
        with_server (Serve.handle_line e1) @@ fun srv1 a1 ->
        with_server (Serve.handle_line e2) @@ fun srv2 a2 ->
        let r =
          Router.create ~metrics:"t.rep" ~replication:2 ~read_fallback:true
            ~timeout_ms:2000 ~retries:0 ~check_period_ms:3600_000 [ a1; a2 ]
        in
        Fun.protect ~finally:(fun () -> Router.stop r) @@ fun () ->
        let line = {|{"op":"betti","facets":["0:i0 ; 1:i1"],"id":6}|} in
        let resp = Router.route r line in
        check_contains "first answer ok" resp {|"ok":true|};
        check_contains "first answer is a miss" resp {|"cached":false|};
        let primary = List.hd (Router.preference r line) in
        let replica_engine = if primary = 0 then e2 else e1 in
        check bool "populate hint reached the replica" true
          (poll (fun () -> E.snapshot replica_engine <> []));
        Server.stop (if primary = 0 then srv1 else srv2);
        let resp2 = Router.route r line in
        check_contains "replica answers" resp2 {|"ok":true|};
        check_contains "served from the populated cache" resp2
          {|"cached":true|};
        check bool "fallback_read counted" true
          (Obs.counter_value (Obs.counter "t.rep.replica.fallback_read") >= 1);
        check bool "fallback_hit counted" true
          (Obs.counter_value (Obs.counter "t.rep.replica.fallback_hit") >= 1));
    Alcotest.test_case "join: epoch bumps and only the new range migrates"
      `Quick
      (fun () ->
        with_engine @@ fun e1 ->
        with_engine @@ fun e2 ->
        with_engine @@ fun e3 ->
        with_server (Serve.handle_line e1) @@ fun _s1 a1 ->
        with_server (Serve.handle_line e2) @@ fun _s2 a2 ->
        with_server (Serve.handle_line e3) @@ fun _s3 a3 ->
        let r =
          Router.create ~metrics:"t.join" ~replication:2 ~timeout_ms:2000
            ~retries:0 ~check_period_ms:3600_000 [ a1; a2 ]
        in
        Fun.protect ~finally:(fun () -> Router.stop r) @@ fun () ->
        List.iter
          (fun l -> check_contains "warm-up" (Router.route r l) {|"ok":true|})
          (warm_queries 12);
        check int "epoch starts at 0" 0 (Router.epoch r);
        let join =
          Printf.sprintf {|{"op":"join","backend":"127.0.0.1:%d","id":11}|}
            a3.Addr.port
        in
        let jr = Router.route r join in
        check_contains "joined" jr {|"joined":true|};
        check_contains "epoch advanced" jr {|"epoch":1|};
        check_contains "warm peer named" jr {|"predecessor":"127.0.0.1:|};
        check_contains "id echoed" jr {|"id":11|};
        check int "epoch visible" 1 (Router.epoch r);
        let jr2 = Router.route r join in
        check_contains "rejoin is idempotent" jr2 {|"joined":false|};
        check_contains "rejoin keeps the epoch" jr2 {|"epoch":1|};
        let cl = Router.route r {|{"op":"cluster"}|} in
        check_contains "cluster ok" cl {|"ok":true|};
        check_contains "cluster lists the joiner" cl
          (Printf.sprintf {|"addr":"127.0.0.1:%d"|} a3.Addr.port);
        check_contains "cluster reports replication" cl {|"replication":2|};
        (* the joiner's engine must converge to exactly the entries whose
           owner set under the new ring includes it — computed here with
           the same Ring arithmetic the router uses *)
        let ring = Ring.make (List.map Addr.to_string [ a1; a2; a3 ]) in
        let hexes snap =
          List.map (fun (k, _) -> Psph_engine.Key.to_hex k) snap
        in
        let all_keys =
          List.sort_uniq compare (hexes (E.snapshot e1 @ E.snapshot e2))
        in
        let expected =
          List.filter
            (fun hex -> List.mem 2 (Ring.owners ring ~r:2 ("key:" ^ hex)))
            all_keys
        in
        check bool "sample placed keys on the joiner" true (expected <> []);
        check bool "exactly the new range arrived" true
          (poll (fun () ->
               List.sort compare (hexes (E.snapshot e3)) = expected)));
    Alcotest.test_case "degraded answers backpressure only while probing"
      `Quick
      (fun () ->
        let r =
          Router.create ~timeout_ms:200 ~retries:0 ~check_period_ms:250
            [ loopback (dead_port ()) ]
        in
        Fun.protect ~finally:(fun () -> Router.stop r) @@ fun () ->
        let cold = Router.route r {|{"op":"psph","n":1,"values":1,"id":2}|} in
        check_contains "degrades" cold "no backend";
        check_contains "id echoed" cold {|"id":2|};
        check bool "no backpressure without a prober" false
          (contains cold "retry_after_ms");
        Router.start_health_checks r;
        let probed = Router.route r {|{"op":"psph","n":1,"values":1}|} in
        check_contains "prober running: when to come back" probed
          {|"retry_after_ms":250|});
    Alcotest.test_case "full partition degrades, then recovers after heal"
      `Quick
      (fun () ->
        (* every backend unreachable: the degraded answer carries the
           retry hint while the prober runs — and once a backend comes
           back on one of those very ports, the prober revives it and
           real answers resume without touching the router *)
        let p1 = dead_port () and p2 = dead_port () in
        let r =
          Router.create ~timeout_ms:300 ~retries:0 ~check_period_ms:100
            [ loopback p1; loopback p2 ]
        in
        Router.start_health_checks r;
        Fun.protect ~finally:(fun () -> Router.stop r) @@ fun () ->
        let dark = Router.route r {|{"op":"psph","n":1,"values":2,"id":7}|} in
        check_contains "degrades under full partition" dark "no backend";
        check_contains "id echoed" dark {|"id":7|};
        check_contains "prober promises a retry" dark {|"retry_after_ms":100|};
        check bool "router sees every backend dead" true
          (List.for_all (fun (_, alive) -> not alive) (Router.backends r));
        let engine = E.create ~domains:0 () in
        match
          Server.listen ~handler:(Serve.handle_line engine) (loopback p2)
        with
        | Error m -> fail m
        | Ok srv ->
            Server.start srv;
            Fun.protect ~finally:(fun () -> Server.stop srv) @@ fun () ->
            let deadline = Obs.monotonic () +. 5. in
            let rec wait () =
              let resp = Router.route r {|{"op":"psph","n":1,"values":2}|} in
              if contains resp {|"ok":true|} then resp
              else if Obs.monotonic () > deadline then
                fail ("no recovery after heal: " ^ resp)
              else begin
                Thread.delay 0.05;
                wait ()
              end
            in
            let healed = wait () in
            check_contains "healed answer is a real one" healed {|"betti"|};
            check bool "prober revived the healed backend" true
              (List.exists (fun (_, alive) -> alive) (Router.backends r)));
  ]

(* ------------------------------------------------------------------ *)
(* Client stale-set bound                                              *)
(* ------------------------------------------------------------------ *)

(* a server that grants v2 json pipelining on the hello and then reads
   and discards every frame: each windowed request times out and leaves
   a stale-set debt that will never be repaid *)
let with_sink_server f =
  let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, 0));
  Unix.listen fd 8;
  let port =
    match Unix.getsockname fd with Unix.ADDR_INET (_, p) -> p | _ -> 0
  in
  let stop = Atomic.make false in
  let th =
    Thread.create
      (fun () ->
        while not (Atomic.get stop) do
          match Unix.accept fd with
          | cfd, _ ->
              let r = Frame.reader () in
              let buf = Bytes.create 65536 in
              let answered = ref false in
              (try
                 let rec loop () =
                   (match Frame.next r with
                   | Some _ when not !answered ->
                       answered := true;
                       let out =
                         Frame.encode
                           {|{"ok":true,"version":2,"pipeline":true,"codec":"json"}|}
                       in
                       let n = String.length out in
                       let off = ref 0 in
                       while !off < n do
                         off :=
                           !off + Unix.write_substring cfd out !off (n - !off)
                       done
                   | Some _ -> ()
                   | None ->
                       let n = Unix.read cfd buf 0 (Bytes.length buf) in
                       if n = 0 then raise Exit;
                       Frame.feed r buf 0 n);
                   loop ()
                 in
                 loop ()
               with _ -> ());
              (try Unix.close cfd with _ -> ())
          | exception _ -> ()
        done)
      ()
  in
  Fun.protect
    ~finally:(fun () ->
      Atomic.set stop true;
      (try
         let k = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
         (try
            Unix.connect k (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
          with _ -> ());
         try Unix.close k with _ -> ()
       with _ -> ());
      Thread.join th;
      try Unix.close fd with _ -> ())
    (fun () -> f (loopback port))

let stale_bound_tests =
  [
    Alcotest.test_case "stale set is capped, oldest evicted first" `Quick
      (fun () ->
        with_sink_server @@ fun addr ->
        let c =
          Client.create ~metrics:"t.stcap" ~timeout_ms:150 ~retries:0
            ~backoff_ms:1 ~pipeline_depth:1200 addr
        in
        Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
        let lines =
          List.init 1200 (fun i ->
              Printf.sprintf {|{"op":"psph","n":%d,"values":1}|} i)
        in
        let rs = Client.pipeline c lines in
        check bool "every request timed out" true
          (List.for_all (function Error Client.Timeout -> true | _ -> false) rs);
        (* 1200 debts incurred, the table must hold at most the cap *)
        check int "stale set capped at 1024" 1024 (Client.pending_stale c);
        check int "the connection survived" 1
          (Obs.counter_value (Obs.counter "t.stcap.reconnects")));
    Alcotest.test_case "stale entries age out after their TTL" `Quick
      (fun () ->
        with_sink_server @@ fun addr ->
        (* timeout 60ms -> TTL floors at 0.5s *)
        let c =
          Client.create ~metrics:"t.stage" ~timeout_ms:60 ~retries:0
            ~backoff_ms:1 ~pipeline_depth:4 addr
        in
        Fun.protect ~finally:(fun () -> Client.close c) @@ fun () ->
        let mk n = Printf.sprintf {|{"op":"psph","n":%d,"values":1}|} n in
        ignore (Client.pipeline c (List.map mk [ 1; 2; 3; 4 ]));
        check int "four debts owed" 4 (Client.pending_stale c);
        Thread.delay 0.7;
        (* the next timed-out request triggers the prune on its way in *)
        ignore (Client.pipeline c [ mk 5 ]);
        check int "old debts aged out, only the new one left" 1
          (Client.pending_stale c);
        check int "still no reconnect" 1
          (Obs.counter_value (Obs.counter "t.stage.reconnects")));
  ]

let suites =
  [
    ("net addr", addr_tests);
    ("net frame", frame_tests @ frame_props);
    ("net loopback", loopback_tests);
    ("net codec", codec_props @ codec_tests);
    ("net pipeline", pipeline_tests);
    ("net reset taxonomy", reset_tests);
    ("net router", router_tests);
    ("net ring", ring_props);
    ("net replica", replica_tests);
    ("net cluster", cluster_tests);
    ("net stale bound", stale_bound_tests);
  ]
