(* Tests for the pseudosphere core library: the paper's constructions. *)

open Psph_topology
open Psph_model
open Pseudosphere

let inputs n = List.init (n + 1) (fun i -> (i, i mod 2))

let input_simplex n = Input_complex.simplex_of_inputs (inputs n)

let betti c = Array.to_list (Homology.betti c)

(* ------------------------------------------------------------------ *)
(* Pseudosphere algebra (Definition 3, Lemma 4, Corollary 6)           *)
(* ------------------------------------------------------------------ *)

let psph_tests =
  [
    Alcotest.test_case "Figure 1: binary 2-pseudosphere is the octahedron" `Quick
      (fun () ->
        let c = Psph.realize ~vertex:Psph.default_vertex (Psph.binary 2) in
        Alcotest.(check (list int)) "f" [ 6; 12; 8 ] (Array.to_list (Complex.f_vector c));
        Alcotest.(check int) "chi" 2 (Complex.euler c);
        Alcotest.(check (list int)) "betti of S^2" [ 1; 0; 1 ] (betti c));
    Alcotest.test_case "binary n-pseudosphere is an n-sphere (n=1,2,3)" `Quick
      (fun () ->
        List.iter
          (fun n ->
            let c = Psph.realize ~vertex:Psph.default_vertex (Psph.binary n) in
            let expect = List.init (n + 1) (fun i -> if i = 0 || i = n then 1 else 0) in
            Alcotest.(check (list int)) (Printf.sprintf "S^%d" n) expect (betti c))
          [ 1; 2; 3 ]);
    Alcotest.test_case "Figure 2: psi(S^1; {0,1}) is a square" `Quick (fun () ->
        let c =
          Psph.realize ~vertex:Psph.default_vertex
            (Psph.uniform ~base:(Simplex.proc_simplex 1) [ Label.Int 0; Label.Int 1 ])
        in
        Alcotest.(check (list int)) "f" [ 4; 4 ] (Array.to_list (Complex.f_vector c));
        Alcotest.(check (list int)) "circle betti" [ 1; 1 ] (betti c));
    Alcotest.test_case "Figure 2: psi(S^0; {0,1,2}) is three points" `Quick (fun () ->
        let c =
          Psph.realize ~vertex:Psph.default_vertex
            (Psph.uniform ~base:(Simplex.proc_simplex 0)
               [ Label.Int 0; Label.Int 1; Label.Int 2 ])
        in
        Alcotest.(check (list int)) "f" [ 3 ] (Array.to_list (Complex.f_vector c));
        Alcotest.(check int) "conn -1 (Cor 6, m=0)" (-1) (Homology.connectivity c));
    Alcotest.test_case "Lemma 4.1: singleton value sets give the base simplex" `Quick
      (fun () ->
        let base = Simplex.proc_simplex 2 in
        let c =
          Psph.realize ~vertex:Psph.default_vertex (Psph.uniform ~base [ Label.Int 9 ])
        in
        Alcotest.(check (list int)) "f" [ 3; 3; 1 ] (Array.to_list (Complex.f_vector c));
        Alcotest.(check bool) "iso to solid base" true
          (Simplicial_map.are_isomorphic c (Complex.of_simplex base)));
    Alcotest.test_case "Lemma 4.2: empty value set deletes the vertex" `Quick (fun () ->
        let base = Simplex.proc_simplex 2 in
        let with_empty =
          Psph.create ~base ~values:(fun p -> if p = 1 then [] else [ Label.Int 0; Label.Int 1 ])
        in
        let without =
          Psph.create ~base:(Simplex.without_ids (Pid.Set.singleton 1) base)
            ~values:(fun _ -> [ Label.Int 0; Label.Int 1 ])
        in
        Alcotest.(check bool) "equal" true
          (Complex.equal (Psph.realize with_empty) (Psph.realize without));
        Alcotest.(check int) "dim" 1 (Psph.dim with_empty));
    Alcotest.test_case "Lemma 4.3: intersections are componentwise" `Quick (fun () ->
        let base = Simplex.proc_simplex 2 in
        let a = Psph.uniform ~base [ Label.Int 0; Label.Int 1 ] in
        let b = Psph.uniform ~base [ Label.Int 1; Label.Int 2 ] in
        let lhs = Complex.inter (Psph.realize a) (Psph.realize b) in
        let rhs = Psph.realize (Psph.inter a b) in
        Alcotest.(check bool) "equal" true (Complex.equal lhs rhs));
    Alcotest.test_case "Lemma 4.3 with different bases" `Quick (fun () ->
        let base = Simplex.proc_simplex 2 in
        let face = Simplex.without_ids (Pid.Set.singleton 2) base in
        let a = Psph.uniform ~base [ Label.Int 0; Label.Int 1 ] in
        let b = Psph.uniform ~base:face [ Label.Int 1 ] in
        let lhs = Complex.inter (Psph.realize a) (Psph.realize b) in
        let rhs = Psph.realize (Psph.inter a b) in
        Alcotest.(check bool) "equal" true (Complex.equal lhs rhs));
    Alcotest.test_case "Corollary 6: (m-1)-connectivity" `Quick (fun () ->
        List.iter
          (fun (m, sizes) ->
            let base = Simplex.proc_simplex m in
            let ps =
              Psph.create ~base ~values:(fun p ->
                  List.init (List.nth sizes p) (fun i -> Label.Int i))
            in
            let c = Psph.realize ps in
            Alcotest.(check bool)
              (Printf.sprintf "m=%d" m)
              true
              (Homology.is_k_connected c (m - 1)))
          [ (0, [ 2 ]); (1, [ 2; 3 ]); (2, [ 2; 2; 2 ]); (2, [ 1; 2; 3 ]) ]);
    Alcotest.test_case "facet and simplex counts" `Quick (fun () ->
        let ps = Psph.binary 2 in
        Alcotest.(check int) "facets" 8 (Psph.facet_count ps);
        Alcotest.(check int) "simplices" 26 (Psph.simplex_count ps);
        let c = Psph.realize ps in
        Alcotest.(check int) "matches realization" (Psph.simplex_count ps)
          (Complex.num_simplices c);
        Alcotest.(check int) "matches facets" (Psph.facet_count ps)
          (List.length (Complex.facets c)));
    Alcotest.test_case "subsumption" `Quick (fun () ->
        let base = Simplex.proc_simplex 1 in
        let big = Psph.uniform ~base [ Label.Int 0; Label.Int 1 ] in
        let small = Psph.uniform ~base [ Label.Int 0 ] in
        Alcotest.(check bool) "big subsumes small" true (Psph.subsumes big small);
        Alcotest.(check bool) "small does not subsume big" false (Psph.subsumes small big));
    Alcotest.test_case "non-chromatic base rejected" `Quick (fun () ->
        Alcotest.check_raises "raises"
          (Invalid_argument "Psph.create: base simplex is not chromatic") (fun () ->
            ignore
              (Psph.create
                 ~base:(Simplex.of_list [ Vertex.anon 0; Vertex.anon 1 ])
                 ~values:(fun _ -> []))));
    Alcotest.test_case "input complex is psi(P^n; V)" `Quick (fun () ->
        let c = Input_complex.make ~n:2 ~values:[ 0; 1 ] in
        Alcotest.(check (list int)) "octahedron betti" [ 1; 0; 1 ] (betti c);
        let plain = Input_complex.binary 2 in
        Alcotest.(check bool) "plain iso" true (Simplicial_map.are_isomorphic c plain));
  ]

(* ------------------------------------------------------------------ *)
(* Asynchronous complexes (Section 6)                                  *)
(* ------------------------------------------------------------------ *)

let async_tests =
  [
    Alcotest.test_case "Lemma 11: explicit iso (grid)" `Quick (fun () ->
        List.iter
          (fun (n, f) ->
            Alcotest.(check bool)
              (Printf.sprintf "n=%d f=%d" n f)
              true
              (Async_complex.lemma11_holds ~n ~f (input_simplex n)))
          [ (1, 1); (2, 1); (2, 2); (3, 1) ]);
    Alcotest.test_case "A^1 facet count: ((sum_j C(n, j))^(n+1))" `Quick (fun () ->
        let c = Async_complex.one_round ~n:2 ~f:1 (input_simplex 2) in
        (* each process hears >= 2 of 3: 3 one-miss + 1 full = 4? no: hears
           self plus >= 1 of 2 others: 3 options; 3 processes: 27 facets *)
        Alcotest.(check int) "facets" 27 (List.length (Complex.facets c)));
    Alcotest.test_case "A^1 equals enumerated executions" `Quick (fun () ->
        List.iter
          (fun (n, f) ->
            let formula = Async_complex.one_round ~n ~f (input_simplex n) in
            let enumerated = Enumerated.async ~n ~f ~r:1 (inputs n) in
            Alcotest.(check bool)
              (Printf.sprintf "n=%d f=%d" n f)
              true
              (Complex.equal formula enumerated))
          [ (1, 1); (2, 1); (2, 2) ]);
    Alcotest.test_case "A^2 equals enumerated executions" `Quick (fun () ->
        let formula = Async_complex.rounds ~n:2 ~f:1 ~r:2 (input_simplex 2) in
        let enumerated = Enumerated.async ~n:2 ~f:1 ~r:2 (inputs 2) in
        Alcotest.(check bool) "equal" true (Complex.equal formula enumerated));
    Alcotest.test_case "P(S^m) empty when m < n - f" `Quick (fun () ->
        let small = Input_complex.simplex_of_inputs [ (0, 0) ] in
        let c = Async_complex.one_round ~n:2 ~f:1 small in
        Alcotest.(check bool) "empty" true (Complex.is_empty c));
    Alcotest.test_case "Lemma 12: connectivity grid" `Quick (fun () ->
        List.iter
          (fun (n, f, r) ->
            let c = Async_complex.rounds ~n ~f ~r (input_simplex n) in
            let expected = Async_complex.lemma12_expected_connectivity ~m:n ~n ~f in
            Alcotest.(check bool)
              (Printf.sprintf "n=%d f=%d r=%d" n f r)
              true
              (Homology.is_k_connected c expected))
          [ (1, 1, 1); (2, 1, 1); (2, 2, 1); (2, 1, 2); (2, 2, 2); (3, 1, 1) ]);
    Alcotest.test_case "Lemma 12 on faces: P(S^m) connectivity" `Quick (fun () ->
        (* m = 2, n = 3, f = 2: expected (m - (n - f) - 1) = 0-connected *)
        let face = Input_complex.simplex_of_inputs [ (0, 0); (1, 1); (2, 0) ] in
        let c = Async_complex.one_round ~n:3 ~f:2 face in
        Alcotest.(check bool) "0-connected" true (Homology.is_k_connected c 0));
    Alcotest.test_case "A^0 is the solid input simplex" `Quick (fun () ->
        let s = input_simplex 2 in
        Alcotest.(check bool) "equal" true
          (Complex.equal (Async_complex.rounds ~n:2 ~f:1 ~r:0 s) (Complex.of_simplex s)));
    Alcotest.test_case "over_inputs unions facets" `Quick (fun () ->
        let ic = Input_complex.make ~n:1 ~values:[ 0; 1 ] in
        let c = Async_complex.over_inputs ~n:1 ~f:1 ~r:1 ic in
        (* contains the one-round complex of each input edge *)
        List.iter
          (fun (a, b) ->
            let s = Input_complex.simplex_of_inputs [ (0, a); (1, b) ] in
            Alcotest.(check bool) "subcomplex" true
              (Complex.subcomplex (Async_complex.one_round ~n:1 ~f:1 s) c))
          [ (0, 0); (0, 1); (1, 0); (1, 1) ]);
  ]

(* ------------------------------------------------------------------ *)
(* Synchronous complexes (Section 7)                                   *)
(* ------------------------------------------------------------------ *)

let sync_tests =
  let s2 = input_simplex 2 in
  [
    Alcotest.test_case "Lemma 14: explicit iso (grid)" `Quick (fun () ->
        List.iter
          (fun (n, ks) ->
            let s = input_simplex n in
            List.iter
              (fun k ->
                Alcotest.(check bool)
                  (Printf.sprintf "n=%d |K|=%d" n (Pid.Set.cardinal k))
                  true (Sync_complex.lemma14_holds s k))
              ks)
          [
            (1, [ Pid.Set.empty; Pid.Set.singleton 0 ]);
            (2, [ Pid.Set.empty; Pid.Set.singleton 2; Pid.Set.of_list [ 0; 1 ] ]);
            (3, [ Pid.Set.singleton 1; Pid.Set.of_list [ 1; 3 ] ]);
          ]);
    Alcotest.test_case "Figure 3: one-round one-faulty 3-process complex" `Quick
      (fun () ->
        let c = Sync_complex.one_round ~k:1 s2 in
        (* 3 fully-heard vertices + 6 partial = 9; failure-free triangle *)
        Alcotest.(check (list int)) "f" [ 9; 12; 1 ] (Array.to_list (Complex.f_vector c));
        Alcotest.(check int) "conn (Lemma 16)" 0 (Homology.connectivity ~cap:0 c));
    Alcotest.test_case "S^1_K is a pseudosphere of the right size" `Quick (fun () ->
        let c = Sync_complex.one_round_failing s2 (Pid.Set.singleton 2) in
        (* psi(edge; 2^{K}): 2 survivors x 2 options *)
        Alcotest.(check (list int)) "f" [ 4; 4 ] (Array.to_list (Complex.f_vector c)));
    Alcotest.test_case "S^1 equals enumerated executions" `Quick (fun () ->
        List.iter
          (fun (n, k) ->
            let formula = Sync_complex.one_round ~k (input_simplex n) in
            let enumerated = Enumerated.sync ~k ~r:1 (inputs n) in
            Alcotest.(check bool)
              (Printf.sprintf "n=%d k=%d" n k)
              true
              (Complex.equal formula enumerated))
          [ (1, 1); (2, 1); (2, 2); (3, 1) ]);
    Alcotest.test_case "S^2 equals enumerated executions" `Quick (fun () ->
        let formula = Sync_complex.rounds ~k:1 ~r:2 s2 in
        let enumerated = Enumerated.sync ~k:1 ~r:2 (inputs 2) in
        Alcotest.(check bool) "equal" true (Complex.equal formula enumerated));
    Alcotest.test_case "Lemma 15 on S^3 (every prefix, k<=1)" `Quick (fun () ->
        let s3 = input_simplex 3 in
        let all_k = Failure.subsets_of_size_at_most (Pid.Set.of_list [ 0; 1; 2; 3 ]) 1 in
        let rec prefixes acc = function
          | [] -> []
          | k :: rest -> List.rev (k :: acc) :: prefixes (k :: acc) rest
        in
        List.iter
          (fun prefix ->
            if List.length prefix >= 2 then
              Alcotest.(check bool)
                (Printf.sprintf "prefix of %d" (List.length prefix))
                true
                (Sync_complex.lemma15_holds s3 prefix))
          (prefixes [] all_k));
    Alcotest.test_case "Lemma 15: intersection identity (all prefixes)" `Quick
      (fun () ->
        let all_k = Failure.subsets_of_size_at_most (Pid.Set.of_list [ 0; 1; 2 ]) 2 in
        let rec prefixes acc = function
          | [] -> []
          | k :: rest -> (List.rev (k :: acc)) :: prefixes (k :: acc) rest
        in
        List.iter
          (fun prefix ->
            if List.length prefix >= 2 then
              Alcotest.(check bool)
                (Printf.sprintf "prefix of %d" (List.length prefix))
                true
                (Sync_complex.lemma15_holds s2 prefix))
          (prefixes [] all_k));
    Alcotest.test_case "Lemma 16: one-round connectivity grid" `Quick (fun () ->
        List.iter
          (fun (n, k) ->
            let c = Sync_complex.one_round ~k (input_simplex n) in
            let expected = Sync_complex.lemma16_expected_connectivity ~m:n ~n ~k in
            Alcotest.(check bool)
              (Printf.sprintf "n=%d k=%d" n k)
              true
              (Homology.is_k_connected c expected))
          [ (2, 1); (3, 1); (4, 1); (4, 2); (5, 2) ]);
    Alcotest.test_case "Lemma 17: r-round connectivity" `Quick (fun () ->
        (* n = 2, k = 1, r = 1 satisfies n >= rk + k *)
        let c = Sync_complex.rounds ~k:1 ~r:1 s2 in
        Alcotest.(check bool) "r=1" true (Homology.is_k_connected c 0);
        (* r = 2 needs n >= 3: S^2(S^2) is disconnected *)
        let c2 = Sync_complex.rounds ~k:1 ~r:2 s2 in
        Alcotest.(check bool) "r=2 disconnected" false (Homology.is_k_connected c2 0));
    Alcotest.test_case "Theorem 18 bound values" `Quick (fun () ->
        Alcotest.(check int) "n=3 f=1 k=1" 2 (Sync_complex.theorem18_lower_bound ~n:3 ~f:1 ~k:1);
        Alcotest.(check int) "n=5 f=2 k=1" 3 (Sync_complex.theorem18_lower_bound ~n:5 ~f:2 ~k:1);
        Alcotest.(check int) "n=5 f=2 k=2" 2 (Sync_complex.theorem18_lower_bound ~n:5 ~f:2 ~k:2);
        Alcotest.(check int) "n=2 f=1 k=1 (n <= f+k)" 1
          (Sync_complex.theorem18_lower_bound ~n:2 ~f:1 ~k:1);
        Alcotest.(check int) "n=4 f=3 k=2" 1 (Sync_complex.theorem18_lower_bound ~n:4 ~f:3 ~k:2));
    Alcotest.test_case "pseudospheres decomposition realizes one_round" `Quick
      (fun () ->
        let pss = Sync_complex.pseudospheres ~k:1 s2 in
        Alcotest.(check int) "count" 4 (List.length pss);
        let union =
          List.fold_left
            (fun acc (_, ps) -> Complex.union acc (Psph.realize ps))
            Complex.empty pss
        in
        (* intrinsic-label union has the same shape as the view-label
           complex *)
        Alcotest.(check bool) "iso" true
          (Simplicial_map.are_isomorphic union (Sync_complex.one_round ~k:1 s2)));
  ]

(* ------------------------------------------------------------------ *)
(* Semi-synchronous complexes (Section 8)                              *)
(* ------------------------------------------------------------------ *)

let semi_tests =
  let s2 = input_simplex 2 in
  [
    Alcotest.test_case "Lemma 19: explicit iso (grid)" `Quick (fun () ->
        List.iter
          (fun (n, p, pat) ->
            Alcotest.(check bool)
              (Printf.sprintf "n=%d p=%d" n p)
              true
              (Semi_sync_complex.lemma19_holds ~p ~n (input_simplex n) pat))
          [
            (1, 2, Failure.pattern []);
            (1, 2, Failure.pattern [ (1, 1) ]);
            (2, 2, Failure.pattern [ (2, 1) ]);
            (2, 2, Failure.pattern [ (2, 2) ]);
            (2, 3, Failure.pattern [ (0, 2) ]);
            (2, 2, Failure.pattern [ (1, 1); (2, 2) ]);
          ]);
    Alcotest.test_case "M^1_{K,F} is psi(S\\K; [F]): sizes" `Quick (fun () ->
        let pat = Failure.pattern [ (2, 1) ] in
        let c = Semi_sync_complex.one_round_pattern ~p:2 ~n:2 s2 pat in
        (* 2 survivors x |[F]| = 2 choices *)
        Alcotest.(check (list int)) "f" [ 4; 4 ] (Array.to_list (Complex.f_vector c)));
    Alcotest.test_case "M^1 equals enumerated executions" `Quick (fun () ->
        List.iter
          (fun (n, k, p) ->
            let formula = Semi_sync_complex.one_round ~k ~p ~n (input_simplex n) in
            let enumerated = Enumerated.semi ~k ~p ~n ~r:1 (inputs n) in
            Alcotest.(check bool)
              (Printf.sprintf "n=%d k=%d p=%d" n k p)
              true
              (Complex.equal formula enumerated))
          [ (1, 1, 2); (2, 1, 2); (2, 1, 3); (2, 2, 2) ]);
    Alcotest.test_case "M^2 equals enumerated executions" `Quick (fun () ->
        let formula = Semi_sync_complex.rounds ~k:1 ~p:2 ~n:1 ~r:2 (input_simplex 1) in
        let enumerated = Enumerated.semi ~k:1 ~p:2 ~n:1 ~r:2 (inputs 1) in
        Alcotest.(check bool) "equal" true (Complex.equal formula enumerated));
    Alcotest.test_case "Lemma 20: intersection identity (ordered prefixes)" `Quick
      (fun () ->
        let pats =
          Semi_sync_complex.pseudospheres ~k:1 ~p:2 ~n:2 s2 |> List.map fst
        in
        Alcotest.(check int) "7 pseudospheres" 7 (List.length pats);
        let rec prefixes acc = function
          | [] -> []
          | x :: rest -> (List.rev (x :: acc)) :: prefixes (x :: acc) rest
        in
        List.iter
          (fun prefix ->
            if List.length prefix >= 2 then
              Alcotest.(check bool)
                (Printf.sprintf "prefix of %d" (List.length prefix))
                true
                (Semi_sync_complex.lemma20_holds ~p:2 ~n:2 s2 prefix))
          (prefixes [] pats));
    Alcotest.test_case "Lemma 20 at p=3 (every ordered prefix)" `Quick (fun () ->
        let s2 = input_simplex 2 in
        let pats =
          Semi_sync_complex.pseudospheres ~k:1 ~p:3 ~n:2 s2 |> List.map fst
        in
        let rec prefixes acc = function
          | [] -> []
          | x :: rest -> List.rev (x :: acc) :: prefixes (x :: acc) rest
        in
        List.iter
          (fun prefix ->
            if List.length prefix >= 2 then
              Alcotest.(check bool)
                (Printf.sprintf "prefix of %d" (List.length prefix))
                true
                (Semi_sync_complex.lemma20_holds ~p:3 ~n:2 s2 prefix))
          (prefixes [] pats));
    Alcotest.test_case "Lemma 21: connectivity grid" `Quick (fun () ->
        List.iter
          (fun (n, k, p, r) ->
            let c = Semi_sync_complex.rounds ~k ~p ~n ~r (input_simplex n) in
            let expected = Semi_sync_complex.lemma21_expected_connectivity ~m:n ~n ~k in
            Alcotest.(check bool)
              (Printf.sprintf "n=%d k=%d p=%d r=%d" n k p r)
              true
              (Homology.is_k_connected c expected))
          [ (2, 1, 2, 1); (3, 1, 2, 1); (2, 1, 3, 1); (4, 2, 2, 1) ];
        (* hypothesis n >= (r+1)k is necessary: the wait-free 2-process
           one-round complex is disconnected (consensus impossible) *)
        let c = Semi_sync_complex.rounds ~k:1 ~p:2 ~n:1 ~r:1 (input_simplex 1) in
        Alcotest.(check bool) "n=1 k=1 r=1 disconnected" false
          (Homology.is_k_connected c 0));
    Alcotest.test_case "Corollary 22 time values" `Quick (fun () ->
        (* f = 2, k = 1, C = 2, d = 10: r = ceil(2/1) - 1 = 1 -> 10 + 20 *)
        Alcotest.(check (float 0.001)) "f2k1" 30.0
          (Semi_sync_complex.corollary22_time ~f:2 ~k:1 ~c1:1 ~c2:2 ~d:10);
        (* f = 3, k = 2: r = ceil(3/2) - 1 = 1 -> d + Cd *)
        Alcotest.(check (float 0.001)) "f3k2" 30.0
          (Semi_sync_complex.corollary22_time ~f:3 ~k:2 ~c1:1 ~c2:2 ~d:10);
        (* C = 1 (synchronous limit): bound degenerates to r*d + d *)
        Alcotest.(check (float 0.001)) "sync limit" 20.0
          (Semi_sync_complex.corollary22_time ~f:2 ~k:1 ~c1:1 ~c2:1 ~d:10));
    Alcotest.test_case "microround counts agree with simulator" `Quick (fun () ->
        let cfg = { Sim.c1 = 1; c2 = 2; d = 3 } in
        Alcotest.(check int) "p" 3 (Sim.microrounds cfg));
  ]

(* ------------------------------------------------------------------ *)
(* Mayer-Vietoris engine                                               *)
(* ------------------------------------------------------------------ *)

let mv_tests =
  let s2 = input_simplex 2 in
  [
    Alcotest.test_case "single pseudosphere axiom" `Quick (fun () ->
        let ps = Psph.binary 2 in
        let proof = Mayer_vietoris.union_connectivity [ ps ] in
        Alcotest.(check int) "conn" 1 (Mayer_vietoris.conn proof);
        Alcotest.(check bool) "valid" true (Mayer_vietoris.validate [ ps ] proof));
    Alcotest.test_case "empty list" `Quick (fun () ->
        Alcotest.(check int) "conn" (-2)
          (Mayer_vietoris.conn (Mayer_vietoris.union_connectivity [])));
    Alcotest.test_case "disjoint pseudospheres" `Quick (fun () ->
        let b0 = Simplex.of_procs [ (0, Label.Unit) ] in
        let b1 = Simplex.of_procs [ (1, Label.Unit) ] in
        let p0 = Psph.uniform ~base:b0 [ Label.Int 0 ] in
        let p1 = Psph.uniform ~base:b1 [ Label.Int 0 ] in
        let proof = Mayer_vietoris.union_connectivity [ p0; p1 ] in
        Alcotest.(check int) "conn" (-1) (Mayer_vietoris.conn proof);
        Alcotest.(check bool) "valid" true (Mayer_vietoris.validate [ p0; p1 ] proof));
    Alcotest.test_case "sync S^1 derivation matches Lemma 16" `Quick (fun () ->
        List.iter
          (fun (n, k) ->
            let s = input_simplex n in
            let pss = List.map snd (Sync_complex.pseudospheres ~k s) in
            let proof = Mayer_vietoris.union_connectivity pss in
            let claimed = Sync_complex.lemma16_expected_connectivity ~m:n ~n ~k in
            Alcotest.(check bool)
              (Printf.sprintf "n=%d k=%d: derived >= claimed" n k)
              true
              (Mayer_vietoris.conn proof >= claimed);
            Alcotest.(check bool)
              (Printf.sprintf "n=%d k=%d: numerically valid" n k)
              true
              (Mayer_vietoris.validate pss proof))
          [ (2, 1); (3, 1); (4, 2) ]);
    Alcotest.test_case "semi-sync M^1 derivation matches Lemma 21" `Quick (fun () ->
        let pss = List.map snd (Semi_sync_complex.pseudospheres ~k:1 ~p:2 ~n:2 s2) in
        let proof = Mayer_vietoris.union_connectivity pss in
        Alcotest.(check bool) "derived >= 0" true (Mayer_vietoris.conn proof >= 0);
        Alcotest.(check bool) "valid" true (Mayer_vietoris.validate pss proof));
    Alcotest.test_case "async A^1 is a single axiom" `Quick (fun () ->
        let ps = Async_complex.pseudosphere ~n:2 ~f:1 s2 in
        let proof = Mayer_vietoris.union_connectivity [ ps ] in
        Alcotest.(check int) "conn = dim - 1" 1 (Mayer_vietoris.conn proof);
        Alcotest.(check int) "one axiom" 1 (Mayer_vietoris.size proof));
    Alcotest.test_case "derived bounds are sound on random unions" `Quick (fun () ->
        (* soundness: derived conn never exceeds homological connectivity *)
        let base = Simplex.proc_simplex 2 in
        let mk vals = Psph.create ~base ~values:(fun p -> List.nth vals p) in
        let i n = Label.Int n in
        let unions =
          [
            [ mk [ [ i 0; i 1 ]; [ i 0 ]; [ i 0; i 1 ] ];
              mk [ [ i 1; i 2 ]; [ i 0; i 1 ]; [ i 1 ] ] ];
            [ mk [ [ i 0 ]; [ i 0; i 1 ]; [ i 2 ] ];
              mk [ [ i 1 ]; [ i 1 ]; [ i 2 ] ];
              mk [ [ i 0; i 1 ]; [ i 0; i 1 ]; [ i 2; i 3 ] ] ];
          ]
        in
        List.iter
          (fun pss ->
            let proof = Mayer_vietoris.union_connectivity pss in
            Alcotest.(check bool) "sound" true (Mayer_vietoris.validate pss proof))
          unions);
    Alcotest.test_case "proof pretty-printer emits Thm2 steps" `Quick (fun () ->
        let pss = List.map snd (Sync_complex.pseudospheres ~k:1 s2) in
        let proof = Mayer_vietoris.union_connectivity pss in
        let text = Format.asprintf "%a" Mayer_vietoris.pp proof in
        let contains hay needle =
          let nh = String.length hay and nn = String.length needle in
          let rec scan i = i + nn <= nh && (String.sub hay i nn = needle || scan (i + 1)) in
          scan 0
        in
        Alcotest.(check bool) "mentions Thm2" true (contains text "Thm2");
        Alcotest.(check bool) "mentions Cor6" true (contains text "Cor6"));
  ]

let suites =
  [
    ("core.pseudosphere", psph_tests);
    ("core.async", async_tests);
    ("core.sync", sync_tests);
    ("core.semi_sync", semi_tests);
    ("core.mayer_vietoris", mv_tests);
  ]
