(* lib/load tests: the chaos proxy as a transparent relay and under
   each fault mode, the open-loop generator's exhaustive outcome
   taxonomy and seeded determinism, and a miniature in-process soak
   run with every invariant checked. *)

open Psph_net
open Psph_load
module Obs = Psph_obs.Obs
module E = Psph_engine.Engine
module Serve = Psph_engine.Serve

let check = Alcotest.check

let fail = Alcotest.fail

let bool, int = Alcotest.(bool, int)

let loopback port = { Addr.host = "127.0.0.1"; port }

let with_engine_server f =
  let engine = E.create ~domains:0 () in
  let handler = Serve.handle_line engine in
  match
    Server.listen ~handler
      ~bin_handler:(Codec.handle ~json:handler engine)
      (loopback 0)
  with
  | Error m -> fail m
  | Ok srv ->
      Server.start srv;
      Fun.protect
        ~finally:(fun () -> Server.stop srv)
        (fun () -> f (loopback (Server.port srv)))

let with_proxy ?(seed = 11) ?(faults = Chaos.no_faults) upstream f =
  match Chaos.create ~seed ~faults ~upstream (loopback 0) with
  | Error m -> fail m
  | Ok p -> Fun.protect ~finally:(fun () -> Chaos.stop p) (fun () -> f p)

let counter name = Obs.counter_value (Obs.counter name)

(* ------------------------------------------------------------------ *)
(* chaos proxy                                                         *)
(* ------------------------------------------------------------------ *)

let chaos_tests =
  [
    Alcotest.test_case "transparent relay: proxied bytes match direct ones"
      `Quick
      (fun () ->
        with_engine_server @@ fun addr ->
        with_proxy addr @@ fun p ->
        let line = {|{"op":"psph","n":1,"values":3}|} in
        let direct = Client.create ~retries:0 addr in
        (* ask direct twice so the answer is warm — the proxied ask must
           then be byte-identical, cached flag included *)
        ignore (Client.request direct line);
        let want = Client.request direct line in
        Client.close direct;
        let proxied = Client.create ~retries:0 (Chaos.addr p) in
        let got = Client.request proxied line in
        Client.close proxied;
        match (want, got) with
        | Ok w, Ok g -> check Alcotest.string "byte-identical" w g
        | _ -> fail "transparent relay dropped a request");
    Alcotest.test_case "faults disabled means faults injected nowhere"
      `Quick
      (fun () ->
        with_engine_server @@ fun addr ->
        with_proxy
          ~faults:
            {
              Chaos.delay_ms = Some (1000, 2000);
              throttle_bps = Some 1;
              reset_ppc = 1000;
              torn_ppc = 1000;
              corrupt_ppc = 1000;
            }
          addr
        @@ fun p ->
        (* never enabled: the nastiest schedule must be inert *)
        let c = Client.create ~timeout_ms:1000 ~retries:0 (Chaos.addr p) in
        (match Client.request c {|{"op":"models"}|} with
        | Ok r -> check bool "answered" true (String.length r > 0)
        | Error e -> fail (Client.error_message e));
        Client.close c);
    Alcotest.test_case "reset mode: retryable connection error, counted"
      `Quick
      (fun () ->
        with_engine_server @@ fun addr ->
        with_proxy
          ~faults:{ Chaos.no_faults with reset_ppc = 1000 }
          addr
        @@ fun p ->
        Chaos.set_enabled p true;
        let before = counter "chaos.resets" in
        let c = Client.create ~timeout_ms:1000 ~retries:0 (Chaos.addr p) in
        (match Client.request c {|{"op":"models"}|} with
        | Ok r -> fail ("expected a reset, got " ^ r)
        | Error e -> check bool "retryable" true (Client.is_retryable e));
        Client.close c;
        check bool "chaos.resets counted" true (counter "chaos.resets" > before));
    Alcotest.test_case "corruption mode: errors surface, nothing crashes"
      `Quick
      (fun () ->
        with_engine_server @@ fun addr ->
        with_proxy
          ~faults:{ Chaos.no_faults with corrupt_ppc = 1000 }
          addr
        @@ fun p ->
        Chaos.set_enabled p true;
        let before = counter "chaos.corrupted" in
        let c = Client.create ~timeout_ms:500 ~retries:0 (Chaos.addr p) in
        (* every chunk corrupted in both directions: the request may be
           garbled into a server-side error, the response may turn into
           frame garbage — any outcome is fine as long as the client
           returns instead of raising or hanging *)
        (match Client.request c {|{"op":"psph","n":2,"values":2}|} with
        | Ok _ -> ()
        | Error _ -> ());
        Client.close c;
        check bool "chaos.corrupted counted" true
          (counter "chaos.corrupted" > before));
    Alcotest.test_case "full partition: timeouts, then heal restores service"
      `Quick
      (fun () ->
        with_engine_server @@ fun addr ->
        with_proxy addr @@ fun p ->
        let c = Client.create ~timeout_ms:400 ~retries:0 (Chaos.addr p) in
        (match Client.request c {|{"op":"models"}|} with
        | Ok _ -> ()
        | Error e -> fail ("before partition: " ^ Client.error_message e));
        Chaos.set_partition p Chaos.Full;
        (match Client.request c {|{"op":"models"}|} with
        | Ok r -> fail ("expected starvation under partition, got " ^ r)
        | Error e -> check bool "retryable" true (Client.is_retryable e));
        Chaos.set_partition p Chaos.No_partition;
        let deadline = Obs.monotonic () +. 5. in
        let rec recovered () =
          match Client.request c {|{"op":"models"}|} with
          | Ok _ -> true
          | Error _ ->
              if Obs.monotonic () > deadline then false
              else begin
                Thread.delay 0.05;
                recovered ()
              end
        in
        check bool "healed" true (recovered ());
        Client.close c);
    Alcotest.test_case
      "half-open partition: requests arrive, responses vanish" `Quick
      (fun () ->
        with_engine_server @@ fun addr ->
        with_proxy addr @@ fun p ->
        Chaos.set_partition p Chaos.Half_open;
        let c = Client.create ~timeout_ms:400 ~retries:0 (Chaos.addr p) in
        (match Client.request c {|{"op":"models"}|} with
        | Ok r -> fail ("expected a starved response, got " ^ r)
        | Error e -> check bool "retryable" true (Client.is_retryable e));
        Chaos.set_partition p Chaos.No_partition;
        let deadline = Obs.monotonic () +. 5. in
        let rec recovered () =
          match Client.request c {|{"op":"models"}|} with
          | Ok _ -> true
          | Error _ ->
              if Obs.monotonic () > deadline then false
              else begin
                Thread.delay 0.05;
                recovered ()
              end
        in
        check bool "healed" true (recovered ());
        Client.close c);
  ]

(* ------------------------------------------------------------------ *)
(* load generator                                                      *)
(* ------------------------------------------------------------------ *)

let loadgen_tests =
  [
    Alcotest.test_case "outcome taxonomy is exhaustive (no silent loss)"
      `Quick
      (fun () ->
        with_engine_server @@ fun addr ->
        let cfg =
          {
            Loadgen.rate = 300.;
            conns = 2;
            pipeline_depth = 8;
            codec = `Binary;
            duration_s = 1.;
            keyspace = 16;
            zipf = 0.8;
            seed = 3;
            timeout_ms = 5000;
            retries = 2;
          }
        in
        let st = Loadgen.run ~metrics:"tload" cfg addr in
        check bool "generated traffic" true (st.Loadgen.sent > 100);
        check int "every request taxonomized" st.Loadgen.sent
          (Loadgen.completed st);
        check int "no unresolved internals" 0 st.Loadgen.unresolved;
        (* clean loopback: mostly ok, but a loaded test machine may time
           out a first-compute — the invariant is the arithmetic above,
           not a latency promise *)
        check bool "clean network: vast majority ok" true
          (st.Loadgen.ok * 10 >= st.Loadgen.sent * 9);
        check int "one corrected latency per ok answer" st.Loadgen.ok
          (Array.length st.Loadgen.latencies));
    Alcotest.test_case "query table: deterministic, sized, registry-wide"
      `Quick
      (fun () ->
        let a = Loadgen.queries ~keyspace:32 in
        let b = Loadgen.queries ~keyspace:32 in
        check int "sized" 32 (Array.length a);
        check bool "deterministic" true (a = b);
        let models =
          Array.to_list a
          |> List.filter_map (function
               | Codec.Model { model; _ } -> Some model
               | _ -> None)
        in
        List.iter
          (fun name ->
            check bool ("registry model " ^ name ^ " is in the key space")
              true
              (List.mem name models))
          (Pseudosphere.Model_complex.names ()));
    Alcotest.test_case "zipf sampling: seeded and actually skewed" `Quick
      (fun () ->
        let cdf = Loadgen.zipf_cdf ~k:16 ~s:1.2 in
        let draw seed n =
          let rng = Random.State.make [| seed |] in
          List.init n (fun _ -> Loadgen.sample_rank cdf rng)
        in
        check bool "same seed, same sequence" true (draw 9 200 = draw 9 200);
        check bool "different seeds diverge" true (draw 9 200 <> draw 10 200);
        let counts = Array.make 16 0 in
        List.iter (fun r -> counts.(r) <- counts.(r) + 1) (draw 1 2000);
        check bool "head rank beats tail rank" true
          (counts.(0) > 4 * (counts.(15) + 1));
        let u = Loadgen.zipf_cdf ~k:4 ~s:0. in
        check bool "s=0 is uniform" true
          (Array.for_all2
             (fun c want -> Float.abs (c -. want) < 1e-9)
             u
             [| 0.25; 0.5; 0.75; 1. |]));
  ]

(* ------------------------------------------------------------------ *)
(* soak (miniature, in-process backends)                               *)
(* ------------------------------------------------------------------ *)

(* an in-process stand-in for a psc serve child: killable and
   restartable on a stable port (restart builds a fresh engine — cold,
   like a restarted process) *)
let make_inproc_backend _i =
  let srv = ref None in
  let start port =
    let engine = E.create ~domains:0 () in
    let handler = Serve.handle_line engine in
    match
      Server.listen ~handler
        ~bin_handler:(Codec.handle ~json:handler engine)
        (loopback port)
    with
    | Error m -> Error m
    | Ok s ->
        Server.start s;
        srv := Some s;
        Ok (Server.port s)
  in
  match start 0 with
  | Error m -> Error m
  | Ok port ->
      let stop () =
        match !srv with
        | Some s ->
            Server.stop s;
            srv := None
        | None -> ()
      in
      Ok
        {
          Soak.baddr = loopback port;
          kill = stop;
          restart =
            (fun () ->
              match start port with
              | Ok _ -> ()
              | Error m -> Printf.eprintf "restart: %s\n%!" m);
          shutdown = stop;
        }

let soak_tests =
  [
    Alcotest.test_case "miniature soak: all invariants hold" `Slow (fun () ->
        let cfg =
          {
            Soak.backends = 2;
            replicas = 2;
            load =
              {
                Loadgen.rate = 150.;
                conns = 2;
                pipeline_depth = 8;
                codec = `Binary;
                duration_s = 1.2;
                keyspace = 24;
                zipf = 1.0;
                seed = 5;
                timeout_ms = 800;
                retries = 2;
              };
            faults =
              {
                Chaos.delay_ms = Some (1, 5);
                throttle_bps = None;
                reset_ppc = 10;
                torn_ppc = 3;
                corrupt_ppc = 0;
              };
            seed = 5;
            warm_s = 1.;
            (* generous: the suite shares the machine with other tests *)
            slo_p99_ms = 5000.;
            warm_floor = 0.5;
            kill_backend = true;
            converge_timeout_s = 15.;
            make_backend = make_inproc_backend;
          }
        in
        match Soak.run cfg with
        | Error m -> fail m
        | Ok r ->
            check int "three measured phases" 3 (List.length r.Soak.phases);
            check int "seed echoed for reproducibility" 5 r.Soak.seed;
            List.iter
              (fun i ->
                check bool
                  (Printf.sprintf "invariant %s: %s" i.Soak.i_name
                     i.Soak.i_detail)
                  true i.Soak.i_ok)
              r.Soak.invariants;
            check bool "run passed" true (Soak.passed r);
            (* the chaos phase really did see injected faults *)
            let chaos_total =
              List.fold_left ( + ) 0 (List.map snd r.Soak.chaos)
            in
            check bool "chaos counters moved" true (chaos_total > 0));
  ]

let suites =
  [
    ("load chaos proxy", chaos_tests);
    ("load generator", loadgen_tests);
    ("load soak", soak_tests);
  ]
