(* Tests for the message-passing model substrate. *)

open Psph_topology
open Psph_model

let inputs3 = [ (0, 0); (1, 1); (2, 2) ]

let view_testable = Alcotest.testable View.pp View.equal

(* ------------------------------------------------------------------ *)
(* Value / View                                                        *)
(* ------------------------------------------------------------------ *)

let view_tests =
  [
    Alcotest.test_case "value domain" `Quick (fun () ->
        Alcotest.(check (list int)) "domain" [ 0; 1; 2 ] (Value.domain 2));
    Alcotest.test_case "value label round-trip" `Quick (fun () ->
        Alcotest.(check int) "rt" 7 (Value.of_label (Value.to_label 7)));
    Alcotest.test_case "init view basics" `Quick (fun () ->
        let v = View.init 3 in
        Alcotest.(check int) "rounds" 0 (View.rounds v);
        Alcotest.(check int) "input" 3 (View.input v);
        Alcotest.(check bool) "seen" true
          (Value.Set.equal (View.seen_values v) (Value.Set.singleton 3)));
    Alcotest.test_case "round view accumulates" `Quick (fun () ->
        let a = View.init 0 and b = View.init 1 in
        let v = View.round ~prev:a ~heard:[ (0, a); (1, b) ] in
        Alcotest.(check int) "rounds" 1 (View.rounds v);
        Alcotest.(check int) "input" 0 (View.input v);
        Alcotest.(check bool) "seen {0,1}" true
          (Value.Set.equal (View.seen_values v) (Value.Set.of_list [ 0; 1 ]));
        Alcotest.(check bool) "heard" true
          (Pid.Set.equal (View.heard_pids v) (Pid.Set.of_list [ 0; 1 ])));
    Alcotest.test_case "round sorts heard by sender" `Quick (fun () ->
        let a = View.init 0 and b = View.init 1 in
        let v1 = View.round ~prev:a ~heard:[ (1, b); (0, a) ] in
        let v2 = View.round ~prev:a ~heard:[ (0, a); (1, b) ] in
        Alcotest.check view_testable "equal" v1 v2);
    Alcotest.test_case "duplicate senders rejected" `Quick (fun () ->
        let a = View.init 0 in
        Alcotest.check_raises "raises"
          (Invalid_argument "View: duplicate senders in heard list") (fun () ->
            ignore (View.round ~prev:a ~heard:[ (0, a); (0, a) ])));
    Alcotest.test_case "timed round mu range checked" `Quick (fun () ->
        let a = View.init 0 in
        Alcotest.check_raises "raises"
          (Invalid_argument "View.timed_round: mu out of range") (fun () ->
            ignore (View.timed_round ~p:2 ~prev:a ~heard:[ (0, 3, a) ])));
    Alcotest.test_case "label round-trip (round view)" `Quick (fun () ->
        let a = View.init 0 and b = View.init 1 in
        let v =
          View.round ~heard:[ (0, a); (1, b) ]
            ~prev:(View.round ~prev:a ~heard:[ (0, a) ])
        in
        Alcotest.check view_testable "rt" v (View.of_label (View.to_label v)));
    Alcotest.test_case "label round-trip (timed view)" `Quick (fun () ->
        let a = View.init 0 and b = View.init 1 in
        let v = View.timed_round ~p:3 ~prev:a ~heard:[ (0, 3, a); (1, 2, b) ] in
        Alcotest.check view_testable "rt" v (View.of_label (View.to_label v)));
    Alcotest.test_case "views with different heard states differ" `Quick (fun () ->
        let a = View.init 0 and b = View.init 1 in
        let v1 = View.round ~prev:a ~heard:[ (1, b) ] in
        let v2 = View.round ~prev:a ~heard:[ (1, a) ] in
        Alcotest.(check bool) "differ" false (View.equal v1 v2));
    Alcotest.test_case "seen_pids transitively" `Quick (fun () ->
        let a = View.init 0 and b = View.init 1 in
        let ab = View.round ~prev:a ~heard:[ (0, a); (1, b) ] in
        let v = View.round ~prev:b ~heard:[ (0, ab); (1, b) ] in
        Alcotest.(check bool) "0 and 1 seen" true
          (Pid.Set.equal (View.seen_pids v) (Pid.Set.of_list [ 0; 1 ])));
  ]

(* ------------------------------------------------------------------ *)
(* Failure patterns                                                    *)
(* ------------------------------------------------------------------ *)

let failure_tests =
  [
    Alcotest.test_case "subsets_of_size" `Quick (fun () ->
        let u = Pid.Set.of_list [ 0; 1; 2 ] in
        Alcotest.(check int) "pairs" 3 (List.length (Failure.subsets_of_size u 2));
        Alcotest.(check int) "singletons" 3 (List.length (Failure.subsets_of_size u 1));
        Alcotest.(check int) "empty" 1 (List.length (Failure.subsets_of_size u 0)));
    Alcotest.test_case "subsets_of_size_at_most ordering" `Quick (fun () ->
        let u = Pid.Set.of_list [ 0; 1; 2 ] in
        let subs = Failure.subsets_of_size_at_most u 2 in
        Alcotest.(check int) "count" 7 (List.length subs);
        (* sorted by size then lexicographically *)
        let sizes = List.map Pid.Set.cardinal subs in
        Alcotest.(check (list int)) "sizes" [ 0; 1; 1; 1; 2; 2; 2 ] sizes;
        match subs with
        | _ :: s1 :: _ ->
            Alcotest.(check bool) "first singleton is {0}" true
              (Pid.Set.equal s1 (Pid.Set.singleton 0))
        | _ -> Alcotest.fail "unexpected");
    Alcotest.test_case "power_set size" `Quick (fun () ->
        Alcotest.(check int) "2^3" 8
          (List.length (Failure.power_set (Pid.Set.of_list [ 0; 1; 2 ]))));
    Alcotest.test_case "all_patterns count and order" `Quick (fun () ->
        let k = Pid.Set.of_list [ 0; 1 ] in
        let pats = Failure.all_patterns ~p:3 k in
        Alcotest.(check int) "3^2" 9 (List.length pats);
        (* reverse-lex: first pattern fails everything at microround p *)
        match pats with
        | first :: _ ->
            Alcotest.(check int) "P0 at p" 3 (Pid.Map.find 0 first.Failure.at);
            Alcotest.(check int) "P1 at p" 3 (Pid.Map.find 1 first.Failure.at)
        | [] -> Alcotest.fail "empty");
    Alcotest.test_case "last pattern fails at microround 1" `Quick (fun () ->
        let k = Pid.Set.of_list [ 0; 1 ] in
        let pats = Failure.all_patterns ~p:3 k in
        let last = List.nth pats (List.length pats - 1) in
        Alcotest.(check int) "P0 at 1" 1 (Pid.Map.find 0 last.Failure.at);
        Alcotest.(check int) "P1 at 1" 1 (Pid.Map.find 1 last.Failure.at));
    Alcotest.test_case "[F] views: size 2^|K|" `Quick (fun () ->
        let alive = Pid.Set.of_list [ 0; 1; 2 ] in
        let pat = Failure.pattern [ (1, 2); (2, 1) ] in
        let vs = Failure.views ~p:2 ~n:2 ~alive pat in
        Alcotest.(check int) "count" 4 (List.length vs);
        List.iter
          (fun v ->
            Alcotest.(check int) "live entry" 2 v.(0);
            Alcotest.(check bool) "P1 in {1,2}" true (v.(1) = 1 || v.(1) = 2);
            Alcotest.(check bool) "P2 in {0,1}" true (v.(2) = 0 || v.(2) = 1))
          vs);
    Alcotest.test_case "[F] marks dead processes 0" `Quick (fun () ->
        let alive = Pid.Set.of_list [ 0; 1 ] in
        let pat = Failure.pattern [ (1, 2) ] in
        let vs = Failure.views ~p:2 ~n:2 ~alive pat in
        List.iter (fun v -> Alcotest.(check int) "P2 dead" 0 v.(2)) vs);
    Alcotest.test_case "[F^j] halves [F]" `Quick (fun () ->
        let alive = Pid.Set.of_list [ 0; 1; 2 ] in
        let pat = Failure.pattern [ (1, 2); (2, 1) ] in
        let up = Failure.views_up ~p:2 ~n:2 ~alive pat 1 in
        Alcotest.(check int) "count" 2 (List.length up);
        List.iter (fun v -> Alcotest.(check int) "mu_1 = F(1)" 2 v.(1)) up);
    Alcotest.test_case "views_up rejects non-failed pid" `Quick (fun () ->
        let alive = Pid.Set.of_list [ 0; 1 ] in
        let pat = Failure.pattern [ (1, 1) ] in
        Alcotest.check_raises "raises"
          (Invalid_argument "Failure.views_up: pid not in failure set") (fun () ->
            ignore (Failure.views_up ~p:2 ~n:1 ~alive pat 0)));
    Alcotest.test_case "pattern with duplicates rejected" `Quick (fun () ->
        Alcotest.check_raises "raises"
          (Invalid_argument "Failure.pattern: duplicate pids") (fun () ->
            ignore (Failure.pattern [ (0, 1); (0, 2) ])));
  ]

(* ------------------------------------------------------------------ *)
(* Round schedules                                                     *)
(* ------------------------------------------------------------------ *)

let schedule_tests =
  let alive3 = Pid.Set.of_list [ 0; 1; 2 ] in
  [
    Alcotest.test_case "async schedule count matches closed form" `Quick (fun () ->
        List.iter
          (fun (n, f) ->
            let got =
              List.length (Round_schedule.async_schedules ~n ~f ~alive:(Pid.universe n))
            in
            let want = Round_schedule.async_count ~n ~f ~alive_count:(n + 1) in
            Alcotest.(check int) (Printf.sprintf "n=%d f=%d" n f) want got)
          [ (1, 1); (2, 1); (2, 2) ]);
    Alcotest.test_case "async schedules respect n-f+1 and self" `Quick (fun () ->
        List.iter
          (fun sched ->
            Pid.Map.iter
              (fun q heard ->
                Alcotest.(check bool) "self" true (Pid.Set.mem q heard);
                Alcotest.(check bool) "size" true (Pid.Set.cardinal heard >= 2))
              sched)
          (Round_schedule.async_schedules ~n:2 ~f:1 ~alive:alive3));
    Alcotest.test_case "async empty when too few alive" `Quick (fun () ->
        Alcotest.(check int) "empty" 0
          (List.length
             (Round_schedule.async_schedules ~n:2 ~f:1
                ~alive:(Pid.Set.singleton 0))));
    Alcotest.test_case "sync schedule count matches closed form" `Quick (fun () ->
        List.iter
          (fun (n, k) ->
            let got =
              List.length (Round_schedule.sync_schedules ~k ~alive:(Pid.universe n))
            in
            let want = Round_schedule.sync_count ~k ~alive_count:(n + 1) in
            Alcotest.(check int) (Printf.sprintf "n=%d k=%d" n k) want got)
          [ (1, 1); (2, 1); (2, 2); (3, 1) ]);
    Alcotest.test_case "sync schedules for fixed K" `Quick (fun () ->
        let scheds =
          Round_schedule.sync_schedules_for ~failed:(Pid.Set.singleton 2) ~alive:alive3
        in
        (* two survivors, each hears or misses P2: 4 schedules *)
        Alcotest.(check int) "count" 4 (List.length scheds));
    Alcotest.test_case "semi schedule count matches closed form" `Quick (fun () ->
        List.iter
          (fun (n, k, p) ->
            let got =
              List.length
                (Round_schedule.semi_schedules ~k ~p ~n ~alive:(Pid.universe n))
            in
            let want = Round_schedule.semi_count ~k ~p ~alive_count:(n + 1) in
            Alcotest.(check int) (Printf.sprintf "n=%d k=%d p=%d" n k p) want got)
          [ (1, 1, 2); (2, 1, 2); (2, 1, 3); (2, 2, 2) ]);
    Alcotest.test_case "semi failure-free schedule is unique" `Quick (fun () ->
        let scheds =
          Round_schedule.semi_schedules_for
            ~pat:(Failure.pattern []) ~p:2 ~n:2 ~alive:alive3
        in
        Alcotest.(check int) "count" 1 (List.length scheds));
  ]

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let execution_tests =
  [
    Alcotest.test_case "initial global state" `Quick (fun () ->
        let g = Execution.initial inputs3 in
        Alcotest.(check int) "alive" 3 (Pid.Set.cardinal (Execution.alive g));
        Alcotest.check view_testable "P1" (View.init 1) (Pid.Map.find 1 g));
    Alcotest.test_case "one async round, full hearing" `Quick (fun () ->
        let g = Execution.initial inputs3 in
        let sched =
          List.fold_left
            (fun m q -> Pid.Map.add q (Pid.Set.of_list [ 0; 1; 2 ]) m)
            Pid.Map.empty [ 0; 1; 2 ]
        in
        let g' = Execution.apply_async g sched in
        Pid.Map.iter
          (fun _ v ->
            Alcotest.(check bool) "saw all" true
              (Value.Set.equal (View.seen_values v) (Value.Set.of_list [ 0; 1; 2 ])))
          g');
    Alcotest.test_case "sync round crashes remove processes" `Quick (fun () ->
        let g = Execution.initial inputs3 in
        let sched =
          {
            Round_schedule.failed = Pid.Set.singleton 2;
            heard_faulty =
              Pid.Map.of_seq (List.to_seq [ (0, Pid.Set.singleton 2); (1, Pid.Set.empty) ]);
          }
        in
        let g' = Execution.apply_sync g sched in
        Alcotest.(check int) "two left" 2 (Pid.Set.cardinal (Execution.alive g'));
        let v0 = Pid.Map.find 0 g' and v1 = Pid.Map.find 1 g' in
        Alcotest.(check bool) "P0 heard P2" true (Pid.Set.mem 2 (View.heard_pids v0));
        Alcotest.(check bool) "P1 missed P2" false (Pid.Set.mem 2 (View.heard_pids v1)));
    Alcotest.test_case "semi round builds timed views" `Quick (fun () ->
        let g = Execution.initial inputs3 in
        let pat = Failure.pattern [ (2, 1) ] in
        let vec = [| 2; 2; 1 |] in
        let sched =
          {
            Round_schedule.pat;
            choice = Pid.Map.of_seq (List.to_seq [ (0, vec); (1, vec) ]);
          }
        in
        let g' = Execution.apply_semi ~p:2 ~n:2 g sched in
        Alcotest.(check int) "two left" 2 (Pid.Set.cardinal (Execution.alive g'));
        match Pid.Map.find 0 g' with
        | View.Timed_round { p; heard; _ } ->
            Alcotest.(check int) "p" 2 p;
            Alcotest.(check int) "heard 3" 3 (List.length heard)
        | _ -> Alcotest.fail "expected timed view");
    Alcotest.test_case "run_sync execution count r=1" `Quick (fun () ->
        let gs = Execution.run_sync ~k:1 ~rounds:1 (Execution.initial inputs3) in
        Alcotest.(check int) "count" (Round_schedule.sync_count ~k:1 ~alive_count:3)
          (List.length gs));
    Alcotest.test_case "run_async keeps everyone alive" `Quick (fun () ->
        let gs = Execution.run_async ~n:2 ~f:1 ~rounds:2 (Execution.initial inputs3) in
        List.iter
          (fun g -> Alcotest.(check int) "alive" 3 (Pid.Set.cardinal (Execution.alive g)))
          gs);
  ]

(* ------------------------------------------------------------------ *)
(* Priority queue                                                      *)
(* ------------------------------------------------------------------ *)

let pqueue_tests =
  [
    Alcotest.test_case "orders by key" `Quick (fun () ->
        let q = Pqueue.(empty |> push 3 "c" |> push 1 "a" |> push 2 "b") in
        let rec drain q acc =
          match Pqueue.pop q with
          | None -> List.rev acc
          | Some ((_, x), q') -> drain q' (x :: acc)
        in
        Alcotest.(check (list string)) "sorted" [ "a"; "b"; "c" ] (drain q []));
    Alcotest.test_case "fifo among equal keys" `Quick (fun () ->
        let q = Pqueue.(empty |> push 1 "first" |> push 1 "second" |> push 1 "third") in
        let rec drain q acc =
          match Pqueue.pop q with
          | None -> List.rev acc
          | Some ((_, x), q') -> drain q' (x :: acc)
        in
        Alcotest.(check (list string)) "fifo" [ "first"; "second"; "third" ] (drain q []));
    Alcotest.test_case "size tracking" `Quick (fun () ->
        let q = Pqueue.(empty |> push 1 () |> push 2 ()) in
        Alcotest.(check int) "2" 2 (Pqueue.size q);
        match Pqueue.pop q with
        | Some (_, q') -> Alcotest.(check int) "1" 1 (Pqueue.size q')
        | None -> Alcotest.fail "pop");
    Alcotest.test_case "empty pops None" `Quick (fun () ->
        Alcotest.(check bool) "none" true (Pqueue.pop Pqueue.empty = None));
  ]

(* ------------------------------------------------------------------ *)
(* Simulator                                                           *)
(* ------------------------------------------------------------------ *)

let sim_tests =
  let cfg = { Sim.c1 = 1; c2 = 3; d = 2 } in
  [
    Alcotest.test_case "microrounds and uncertainty" `Quick (fun () ->
        Alcotest.(check int) "p" 2 (Sim.microrounds cfg);
        Alcotest.(check (float 0.001)) "C" 3.0 (Sim.uncertainty cfg);
        Alcotest.(check int) "p ceil" 3 (Sim.microrounds { cfg with d = 5; c1 = 2 }));
    Alcotest.test_case "lockstep: steps every c1" `Quick (fun () ->
        let trace = Sim.run cfg ~n:1 (Sim.lockstep cfg) ~until:6 in
        let steps =
          List.filter_map
            (function Sim.Stepped { time; _ } -> Some time | Sim.Received _ -> None)
            (Pid.Map.find 0 trace)
        in
        Alcotest.(check (list int)) "times" [ 1; 2; 3; 4; 5; 6 ] steps);
    Alcotest.test_case "lockstep: deliveries at round boundaries" `Quick (fun () ->
        let trace = Sim.run cfg ~n:1 (Sim.lockstep cfg) ~until:4 in
        List.iter
          (fun (_, evs) ->
            List.iter
              (function
                | Sim.Received { time; _ } ->
                    Alcotest.(check int) "boundary" 0 (time mod cfg.d)
                | Sim.Stepped _ -> ())
              evs)
          (Pid.Map.bindings trace));
    Alcotest.test_case "delays never exceed d" `Quick (fun () ->
        let adv = Sim.lockstep cfg in
        let adv = { adv with Sim.delay = (fun ~src:_ ~dst:_ ~step:_ -> 99) } in
        let trace = Sim.run cfg ~n:1 adv ~until:8 in
        List.iter
          (fun (_, evs) ->
            List.iter
              (function
                | Sim.Received { time; sent_step; _ } ->
                    (* lockstep sender: sent at sent_step * c1 *)
                    Alcotest.(check bool) "<= d" true (time - (sent_step * cfg.c1) <= cfg.d)
                | Sim.Stepped _ -> ())
              evs)
          (Pid.Map.bindings trace));
    Alcotest.test_case "fifo per channel" `Quick (fun () ->
        (* adversarial decreasing delays must not reorder messages *)
        let adv = Sim.lockstep cfg in
        let adv =
          { adv with Sim.delay = (fun ~src:_ ~dst:_ ~step -> max 1 (cfg.d - step)) }
        in
        let trace = Sim.run { cfg with d = 4 } ~n:1 adv ~until:20 in
        List.iter
          (fun (_, evs) ->
            let per_src = Hashtbl.create 4 in
            List.iter
              (function
                | Sim.Received { src; sent_step; _ } ->
                    let prev =
                      Option.value ~default:0 (Hashtbl.find_opt per_src src)
                    in
                    Alcotest.(check bool) "fifo" true (sent_step > prev);
                    Hashtbl.replace per_src src sent_step
                | Sim.Stepped _ -> ())
              evs)
          (Pid.Map.bindings trace));
    Alcotest.test_case "crashes stop steps and drop sends" `Quick (fun () ->
        let crash = { Sim.at_step = 2; deliver_final_to = Pid.Set.empty } in
        let adv = Sim.lockstep_with_crashes cfg [ (1, crash) ] in
        let trace = Sim.run cfg ~n:1 adv ~until:10 in
        let p1_steps =
          List.filter_map
            (function Sim.Stepped { step; _ } -> Some step | Sim.Received _ -> None)
            (Pid.Map.find 1 trace)
        in
        Alcotest.(check (list int)) "steps" [ 1; 2 ] p1_steps;
        (* P0 receives only P1's step-1 message (final send suppressed) *)
        let from_p1 =
          List.filter_map
            (function
              | Sim.Received { src = 1; sent_step; _ } -> Some sent_step
              | Sim.Received _ | Sim.Stepped _ -> None)
            (Pid.Map.find 0 trace)
        in
        Alcotest.(check (list int)) "only step 1" [ 1 ] from_p1);
    Alcotest.test_case "partial final send honours deliver_final_to" `Quick (fun () ->
        let crash = { Sim.at_step = 2; deliver_final_to = Pid.Set.singleton 0 } in
        let adv = Sim.lockstep_with_crashes cfg [ (2, crash) ] in
        let trace = Sim.run cfg ~n:2 adv ~until:10 in
        let got q =
          List.filter_map
            (function
              | Sim.Received { src = 2; sent_step; _ } -> Some sent_step
              | Sim.Received _ | Sim.Stepped _ -> None)
            (Pid.Map.find q trace)
        in
        Alcotest.(check (list int)) "P0 got both" [ 1; 2 ] (got 0);
        Alcotest.(check (list int)) "P1 got first only" [ 1 ] (got 1));
    Alcotest.test_case "indistinguishability: same run" `Quick (fun () ->
        let t = Sim.run cfg ~n:2 (Sim.lockstep cfg) ~until:8 in
        Alcotest.(check bool) "self" true (Sim.indistinguishable_to 0 (t, 5) (t, 5)));
    Alcotest.test_case "slow solo is blind after the crash" `Quick (fun () ->
        (* Corollary 22's stretch in miniature: survivor's observations in
           the slow-solo run up to r*d + C*d are a prefix of its lockstep
           observations *)
        let cfg = { Sim.c1 = 1; c2 = 2; d = 2 } in
        let after_step = 2 (* end of round 1 *) in
        let solo = Sim.run cfg ~n:2 (Sim.slow_solo cfg ~survivor:0 ~after_step) ~until:10 in
        let fast = Sim.run cfg ~n:2 (Sim.lockstep cfg) ~until:10 in
        (* up to the first round boundary both runs look the same to P0 *)
        Alcotest.(check bool) "indist before crash" true
          (Sim.indistinguishable_to 0 (solo, 3) (fast, 3)));
    Alcotest.test_case "decision_time: flooding decides at (f+1)d" `Quick (fun () ->
        let cfg = { Sim.c1 = 1; c2 = 1; d = 2 } in
        let protocol = Protocol.decide_after_rounds 2 in
        let ds =
          Sim.decision_time cfg ~n:2 (Sim.lockstep cfg) ~protocol
            ~inputs:inputs3 ~horizon:10
        in
        Alcotest.(check int) "three deciders" 3 (List.length ds);
        List.iter
          (fun (_, t, v) ->
            Alcotest.(check int) "time 2d" 4 t;
            Alcotest.(check int) "min value" 0 v)
          ds);
  ]

(* ------------------------------------------------------------------ *)
(* Protocol                                                            *)
(* ------------------------------------------------------------------ *)

let protocol_tests =
  [
    Alcotest.test_case "min_seen" `Quick (fun () ->
        let a = View.init 2 and b = View.init 1 in
        let v = View.round ~prev:a ~heard:[ (0, a); (1, b) ] in
        Alcotest.(check int) "min" 1 (Protocol.min_seen v));
    Alcotest.test_case "decide_after_rounds waits" `Quick (fun () ->
        let p = Protocol.decide_after_rounds 2 in
        let a = View.init 5 in
        let v1 = View.round ~prev:a ~heard:[ (0, a) ] in
        let v2 = View.round ~prev:v1 ~heard:[ (0, v1) ] in
        Alcotest.(check bool) "round 0" true (p.Protocol.decide a = None);
        Alcotest.(check bool) "round 1" true (p.Protocol.decide v1 = None);
        Alcotest.(check bool) "round 2" true (p.Protocol.decide v2 = Some 5));
    Alcotest.test_case "full information never decides" `Quick (fun () ->
        let p = Protocol.full_information_never_decide in
        Alcotest.(check bool) "none" true (p.Protocol.decide (View.init 0) = None));
  ]

(* ------------------------------------------------------------------ *)
(* QCheck properties                                                   *)
(* ------------------------------------------------------------------ *)

let gen_view =
  (* random small views over 3 processes *)
  let open QCheck2.Gen in
  let rec gen depth =
    if depth = 0 then map View.init (int_range 0 3)
    else
      let* prev = gen (depth - 1) in
      let* heard_of =
        List.map
          (fun q ->
            let* present = bool in
            if present then
              let* s = gen (depth - 1) in
              return (Some (q, s))
            else return None)
          [ 0; 1; 2 ]
        |> flatten_l
      in
      return (View.round ~prev ~heard:(List.filter_map Fun.id heard_of))
  in
  int_range 0 2 >>= gen

let prop_tests =
  let open QCheck2 in
  [
    Test.make ~count:80 ~name:"view label round-trip" gen_view (fun v ->
        View.equal v (View.of_label (View.to_label v)));
    Test.make ~count:80 ~name:"view compare reflexive" gen_view (fun v ->
        View.compare v v = 0);
    Test.make ~count:80 ~name:"seen_values contains own input" gen_view (fun v ->
        Value.Set.mem (View.input v) (View.seen_values v));
    Test.make ~count:80 ~name:"rounds counts nesting" gen_view (fun v ->
        View.rounds v >= 0 && View.rounds v <= 2);
    Test.make ~count:50 ~name:"pqueue pops sorted"
      Gen.(list_size (int_range 0 40) (int_range 0 100))
      (fun keys ->
        let q = List.fold_left (fun q k -> Pqueue.push k k q) Pqueue.empty keys in
        let rec drain q acc =
          match Pqueue.pop q with
          | None -> List.rev acc
          | Some ((_, x), q') -> drain q' (x :: acc)
        in
        drain q [] = List.sort Int.compare keys);
    Test.make ~count:40 ~name:"async schedules match closed form"
      Gen.(pair (int_range 1 2) (int_range 1 2))
      (fun (n, f) ->
        let f = min f n in
        List.length (Round_schedule.async_schedules ~n ~f ~alive:(Pid.universe n))
        = Round_schedule.async_count ~n ~f ~alive_count:(n + 1));
  ]
  |> List.map QCheck_alcotest.to_alcotest

let suites =
  [
    ("model.view", view_tests);
    ("model.failure", failure_tests);
    ("model.schedule", schedule_tests);
    ("model.execution", execution_tests);
    ("model.pqueue", pqueue_tests);
    ("model.sim", sim_tests);
    ("model.protocol", protocol_tests);
    ("model.properties", prop_tests);
  ]
