let () =
  Alcotest.run "pseudosphere"
    (Test_topology.suites @ Test_bitmat.suites @ Test_topology_ext.suites
    @ Test_chain_random.suites
    @ Test_model.suites @ Test_core.suites @ Test_agreement.suites
    @ Test_extensions.suites @ Test_extensions2.suites @ Test_iis.suites
    @ Test_carrier_map.suites @ Test_connectivity_cert.suites
    @ Test_integration.suites @ Test_coverage.suites @ Test_complex_io.suites
    @ Test_models.suites @ Test_engine.suites @ Test_obs.suites
    @ Test_net.suites @ Test_load.suites)
