(* Round-trip property for Complex_io save/load on random pseudospheres:
   the engine's persistent store and the serve protocol's "facets" fields
   both lean on this serialization being lossless. *)

open Psph_topology
open Pseudosphere

(* psi(P^n; U) with independently chosen nonempty value sets per process,
   n <= 3 (the same shape test_bitmat.ml uses for its homology oracle) *)
let gen_psph =
  QCheck2.Gen.(
    int_range 0 3 >>= fun n ->
    let values = list_size (int_range 1 3) (int_range 0 3) in
    list_repeat (n + 1) values
    |> map (fun vss ->
           let vss = Array.of_list vss in
           Psph.create
             ~base:(Simplex.proc_simplex n)
             ~values:(fun p -> List.map (fun v -> Label.Int v) vss.(Pid.to_int p))))

let save_load c =
  let path = Filename.temp_file "psph_io" ".cpx" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Complex_io.save path c;
      Complex_io.load path)

let roundtrip_props =
  let open QCheck2 in
  [
    Test.make ~count:150 ~name:"save/load round-trips random psi(P^n;U)" gen_psph
      (fun ps ->
        let c = Psph.realize ~vertex:Psph.default_vertex ps in
        Complex.equal c (save_load c));
    Test.make ~count:150
      ~name:"save/load round-trips paired-vertex realizations" gen_psph
      (fun ps ->
        (* paired_vertex labels are Pair (base, value) — exercises the
           nested-label syntax *)
        let c = Psph.realize ~vertex:Psph.paired_vertex ps in
        Complex.equal c (save_load c));
  ]
  |> List.map QCheck_alcotest.to_alcotest

let unit_tests =
  [
    Alcotest.test_case "empty complex round-trips" `Quick (fun () ->
        Alcotest.(check bool)
          "equal" true
          (Complex.equal Complex.empty (save_load Complex.empty)));
    Alcotest.test_case "heard-set labels round-trip (async one-round)" `Quick
      (fun () ->
        (* Pid_set labels, the async complexes' vocabulary *)
        let c =
          Async_complex.one_round ~n:2 ~f:1
            (Input_complex.simplex_of_inputs [ (0, 0); (1, 1); (2, 0) ])
        in
        Alcotest.(check bool) "equal" true (Complex.equal c (save_load c)));
  ]

let suites = [ ("complex_io roundtrip", unit_tests @ roundtrip_props) ]
