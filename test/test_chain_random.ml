(* Tests for Z/2 chains and the seeded random adversaries. *)

open Psph_topology
open Psph_model

let v = Vertex.anon

let sx l = Simplex.of_list (List.map v l)

let cx ls = Complex.of_facets (List.map sx ls)

let circle = cx [ [ 0; 1 ]; [ 1; 2 ]; [ 0; 2 ] ]

let sphere2 = Constructions.sphere 2

(* ------------------------------------------------------------------ *)
(* Chains                                                              *)
(* ------------------------------------------------------------------ *)

let chain_tests =
  [
    Alcotest.test_case "duplicates cancel" `Quick (fun () ->
        let c = Chain.of_simplices [ sx [ 0; 1 ]; sx [ 0; 1 ] ] in
        Alcotest.(check bool) "zero" true (Chain.is_zero c));
    Alcotest.test_case "mixed dimensions rejected" `Quick (fun () ->
        Alcotest.check_raises "raises" (Invalid_argument "Chain: mixed dimensions")
          (fun () -> ignore (Chain.of_simplices [ sx [ 0 ]; sx [ 0; 1 ] ])));
    Alcotest.test_case "boundary of an edge" `Quick (fun () ->
        let b = Chain.boundary (Chain.of_simplices [ sx [ 0; 1 ] ]) in
        Alcotest.(check int) "two vertices" 2 (List.length (Chain.simplices b));
        Alcotest.(check int) "dim" 0 (Chain.dim b));
    Alcotest.test_case "boundary of boundary is zero (triangle)" `Quick (fun () ->
        let c = Chain.of_simplices [ sx [ 0; 1; 2 ] ] in
        Alcotest.(check bool) "dd=0" true (Chain.is_zero (Chain.boundary (Chain.boundary c))));
    Alcotest.test_case "the circle's fundamental class is a cycle" `Quick (fun () ->
        let z = Chain.fundamental_class circle in
        Alcotest.(check bool) "cycle" true (Chain.is_cycle z);
        Alcotest.(check int) "3 edges" 3 (List.length (Chain.simplices z)));
    Alcotest.test_case "the circle's cycle is not a boundary in the circle" `Quick
      (fun () ->
        let z = Chain.fundamental_class circle in
        Alcotest.(check bool) "not boundary" false (Chain.is_boundary_in circle z));
    Alcotest.test_case "it becomes a boundary in the solid triangle" `Quick (fun () ->
        let solid = cx [ [ 0; 1; 2 ] ] in
        let z = Chain.fundamental_class circle in
        Alcotest.(check bool) "boundary" true (Chain.is_boundary_in solid z));
    Alcotest.test_case "sphere's fundamental class is a nonbounding cycle" `Quick
      (fun () ->
        let z = Chain.fundamental_class sphere2 in
        Alcotest.(check bool) "cycle" true (Chain.is_cycle z);
        Alcotest.(check bool) "not boundary" false (Chain.is_boundary_in sphere2 z));
    Alcotest.test_case "pseudosphere fundamental class is a cycle" `Quick (fun () ->
        (* the 'sphere' in pseudosphere, witnessed chain-level *)
        let c =
          Pseudosphere.Psph.realize ~vertex:Pseudosphere.Psph.default_vertex
            (Pseudosphere.Psph.binary 2)
        in
        Alcotest.(check bool) "cycle" true (Chain.is_cycle (Chain.fundamental_class c)));
    Alcotest.test_case "zero chain conventions" `Quick (fun () ->
        Alcotest.(check int) "dim" (-1) (Chain.dim Chain.zero);
        Alcotest.(check bool) "cycle" true (Chain.is_cycle Chain.zero);
        Alcotest.(check bool) "boundary" true (Chain.is_boundary_in circle Chain.zero));
    Alcotest.test_case "add is xor" `Quick (fun () ->
        let a = Chain.of_simplices [ sx [ 0; 1 ]; sx [ 1; 2 ] ] in
        let b = Chain.of_simplices [ sx [ 1; 2 ]; sx [ 0; 2 ] ] in
        let s = Chain.add a b in
        Alcotest.(check int) "two edges" 2 (List.length (Chain.simplices s)));
  ]

let chain_props =
  let open QCheck2 in
  let triangles =
    (* all 3-subsets of {0..6}: generated simplexes all have dimension 2 *)
    List.concat_map
      (fun a ->
        List.concat_map
          (fun b ->
            List.filter_map
              (fun c -> if a < b && b < c then Some (sx [ a; b; c ]) else None)
              (List.init 7 Fun.id))
          (List.init 7 Fun.id))
      (List.init 7 Fun.id)
  in
  let gen_chain =
    Gen.(list_size (int_range 1 6) (oneofl triangles) |> map Chain.of_simplices)
  in
  [
    Test.make ~count:100 ~name:"boundary of boundary is zero" gen_chain (fun c ->
        Chain.is_zero (Chain.boundary (Chain.boundary c)));
    Test.make ~count:100 ~name:"add is associative" Gen.(triple gen_chain gen_chain gen_chain)
      (fun (a, b, c) ->
        Chain.simplices (Chain.add a (Chain.add b c))
        = Chain.simplices (Chain.add (Chain.add a b) c));
    Test.make ~count:100 ~name:"x + x = 0" gen_chain (fun c ->
        Chain.is_zero (Chain.add c c));
    Test.make ~count:100 ~name:"boundary is additive" Gen.(pair gen_chain gen_chain)
      (fun (a, b) ->
        Chain.simplices (Chain.boundary (Chain.add a b))
        = Chain.simplices (Chain.add (Chain.boundary a) (Chain.boundary b)));
  ]
  |> List.map QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Random adversaries                                                  *)
(* ------------------------------------------------------------------ *)

let random_tests =
  let cfg = { Sim.c1 = 2; c2 = 5; d = 6 } in
  [
    Alcotest.test_case "random adversaries produce valid traces" `Quick (fun () ->
        List.iter
          (fun seed ->
            let adv = Random_adversary.make ~seed cfg ~n:3 in
            let t = Sim.run cfg ~n:3 adv ~until:60 in
            Alcotest.(check int)
              (Printf.sprintf "seed %d" seed)
              0
              (List.length (Trace_check.validate cfg t)))
          [ 1; 2; 3; 4; 5; 42; 1234 ]);
    Alcotest.test_case "same seed, same trace" `Quick (fun () ->
        let adv1 = Random_adversary.make ~seed:7 cfg ~n:2 in
        let adv2 = Random_adversary.make ~seed:7 cfg ~n:2 in
        let t1 = Sim.run cfg ~n:2 adv1 ~until:40 in
        let t2 = Sim.run cfg ~n:2 adv2 ~until:40 in
        Alcotest.(check bool) "equal" true (t1 = t2));
    Alcotest.test_case "random sync schedules are valid and in the formula" `Quick
      (fun () ->
        let alive = Pid.universe 2 in
        let inputs = [ (0, 0); (1, 1); (2, 0) ] in
        let s = Pseudosphere.Input_complex.simplex_of_inputs inputs in
        let formula = Pseudosphere.Sync_complex.one_round ~k:1 s in
        List.iter
          (fun seed ->
            let sched = Random_adversary.schedules_sync ~seed ~k:1 ~alive in
            Alcotest.(check bool) "<= k crashes" true
              (Pid.Set.cardinal sched.Round_schedule.failed <= 1);
            let g = Execution.apply_sync (Execution.initial inputs) sched in
            let facet =
              Simplex.of_procs
                (List.map
                   (fun (q, view) -> (q, View.to_label view))
                   (Pid.Map.bindings g))
            in
            Alcotest.(check bool)
              (Printf.sprintf "facet in formula (seed %d)" seed)
              true (Complex.mem facet formula))
          (List.init 25 (fun i -> i)));
    Alcotest.test_case "random semi schedules land in the formula" `Quick (fun () ->
        let alive = Pid.universe 2 in
        let inputs = [ (0, 0); (1, 1); (2, 0) ] in
        let s = Pseudosphere.Input_complex.simplex_of_inputs inputs in
        let formula = Pseudosphere.Semi_sync_complex.one_round ~k:1 ~p:2 ~n:2 s in
        List.iter
          (fun seed ->
            let sched = Random_adversary.schedules_semi ~seed ~k:1 ~p:2 ~n:2 ~alive in
            let g = Execution.apply_semi ~p:2 ~n:2 (Execution.initial inputs) sched in
            let facet =
              Simplex.of_procs
                (List.map
                   (fun (q, view) -> (q, View.to_label view))
                   (Pid.Map.bindings g))
            in
            Alcotest.(check bool)
              (Printf.sprintf "facet in formula (seed %d)" seed)
              true (Complex.mem facet formula))
          (List.init 25 (fun i -> i)));
  ]

let suites =
  [
    ("topology.chain", chain_tests);
    ("topology.chain_props", chain_props);
    ("model.random_adversary", random_tests);
  ]
