(* Tests for connectivity certificates and crash-tolerant protocols in the
   timed simulator. *)

open Psph_topology
open Psph_model
open Pseudosphere
open Psph_agreement

let input_simplex n =
  Input_complex.simplex_of_inputs (List.init (n + 1) (fun i -> (i, i mod 2)))

let cert_tests =
  [
    Alcotest.test_case "empty complex" `Quick (fun () ->
        Alcotest.(check bool) "empty" true
          (Connectivity.certify Complex.empty = Connectivity.Empty_complex);
        Alcotest.(check bool) "not (-1)" false
          (Connectivity.certifies_k_connected Connectivity.Empty_complex (-1));
        Alcotest.(check bool) "-2 always" true
          (Connectivity.certifies_k_connected Connectivity.Empty_complex (-2)));
    Alcotest.test_case "solid simplex certifies by collapse" `Quick (fun () ->
        let cert = Connectivity.certify (Constructions.solid 3) in
        Alcotest.(check bool) "collapse" true
          (cert = Connectivity.Contractible_by_collapse);
        Alcotest.(check bool) "any k" true
          (Connectivity.certifies_k_connected cert 17));
    Alcotest.test_case "sphere certifies by shelling" `Quick (fun () ->
        match Connectivity.certify (Constructions.sphere 2) with
        | Connectivity.Shellable_wedge { spheres; dim } ->
            Alcotest.(check int) "one sphere" 1 spheres;
            Alcotest.(check int) "dim 2" 2 dim;
            Alcotest.(check bool) "1-connected" true
              (Connectivity.certifies_k_connected
                 (Connectivity.Shellable_wedge { spheres; dim })
                 1);
            Alcotest.(check bool) "not 2-connected" false
              (Connectivity.certifies_k_connected
                 (Connectivity.Shellable_wedge { spheres; dim })
                 2)
        | other ->
            Alcotest.failf "expected shelling, got %a" Connectivity.pp_certificate
              other);
    Alcotest.test_case "binary pseudosphere certifies by shelling" `Quick
      (fun () ->
        let c = Psph.realize ~vertex:Psph.default_vertex (Psph.binary 2) in
        match Connectivity.certify c with
        | Connectivity.Shellable_wedge { spheres = 1; dim = 2 } -> ()
        | other ->
            Alcotest.failf "expected wedge of one 2-sphere, got %a"
              Connectivity.pp_certificate other);
    Alcotest.test_case "non-pure sync complex falls back to homology" `Quick
      (fun () ->
        let c = Sync_complex.one_round ~k:1 (input_simplex 2) in
        match Connectivity.certify c with
        | Connectivity.Homological { torsion_free; _ } ->
            Alcotest.(check bool) "torsion-free" true torsion_free;
            Alcotest.(check bool) "certifies 0-connected" true
              (Connectivity.certifies_k_connected (Connectivity.certify c) 0)
        | other ->
            Alcotest.failf "expected homological, got %a"
              Connectivity.pp_certificate other);
    Alcotest.test_case "IIS complex certifies contractible" `Quick (fun () ->
        let c = Iis_complex.one_round (input_simplex 1) in
        Alcotest.(check bool) "contractible or wedge-0" true
          (Connectivity.certifies_k_connected (Connectivity.certify c) 5));
    Alcotest.test_case "homological certificates are range-limited" `Quick
      (fun () ->
        let cert =
          Connectivity.Homological { betti_z2 = [| 0; 0 |]; torsion_free = true }
        in
        Alcotest.(check bool) "within range" true
          (Connectivity.certifies_k_connected cert 1);
        Alcotest.(check bool) "beyond range refused" false
          (Connectivity.certifies_k_connected cert 2));
  ]

(* ------------------------------------------------------------------ *)
(* crash-tolerant decisions in the timed simulator                     *)
(* ------------------------------------------------------------------ *)

let sim_protocol_tests =
  let cfg = { Sim.c1 = 1; c2 = 2; d = 3 } in
  let inputs = [ (0, 4); (1, 1); (2, 7) ] in
  [
    Alcotest.test_case "crashed minimum-holder: survivors still agree" `Quick
      (fun () ->
        (* P1 (minimum) crashes at its first step of round 1, heard by P0
           only; flooding for f+1 rounds still agrees *)
        let crash = { Sim.at_step = 1; deliver_final_to = Pid.Set.singleton 0 } in
        let adv = Sim.lockstep_with_crashes cfg [ (1, crash) ] in
        let protocol = Protocols.semi_sync_consensus ~f:1 in
        let ds =
          Sim.decision_time cfg ~n:2 adv ~protocol ~inputs ~horizon:30
        in
        let values = List.sort_uniq Int.compare (List.map (fun (_, _, v) -> v) ds) in
        Alcotest.(check int) "two deciders" 2 (List.length ds);
        Alcotest.(check int) "agreement" 1 (List.length values));
    Alcotest.test_case "silent crash: survivors decide on their own values" `Quick
      (fun () ->
        let crash = { Sim.at_step = 1; deliver_final_to = Pid.Set.empty } in
        let adv = Sim.lockstep_with_crashes cfg [ (1, crash) ] in
        let protocol = Protocols.semi_sync_consensus ~f:1 in
        let ds = Sim.decision_time cfg ~n:2 adv ~protocol ~inputs ~horizon:30 in
        List.iter (fun (_, _, v) -> Alcotest.(check int) "min of 4,7" 4 v) ds);
    Alcotest.test_case "all decisions respect the Corollary 22 bound" `Quick
      (fun () ->
        let bound =
          Lower_bound.corollary22_time ~f:1 ~k:1 ~c1:cfg.Sim.c1 ~c2:cfg.Sim.c2
            ~d:cfg.Sim.d
        in
        List.iter
          (fun seed ->
            let adv = Random_adversary.make ~seed ~crash_probability:0.0 cfg ~n:2 in
            let ds =
              Sim.decision_time cfg ~n:2 adv
                ~protocol:(Protocols.semi_sync_consensus ~f:1)
                ~inputs ~horizon:30
            in
            List.iter
              (fun (_, t, _) ->
                Alcotest.(check bool) "above bound" true (float_of_int t >= bound))
              ds)
          [ 1; 2; 3 ]);
    Alcotest.test_case "random adversary decisions are consistent" `Quick
      (fun () ->
        (* under random timing (no crashes), everyone decides the global
           minimum *)
        List.iter
          (fun seed ->
            let adv = Random_adversary.make ~seed ~crash_probability:0.0 cfg ~n:2 in
            let ds =
              Sim.decision_time cfg ~n:2 adv
                ~protocol:(Protocols.semi_sync_consensus ~f:1)
                ~inputs ~horizon:40
            in
            Alcotest.(check int) "three deciders" 3 (List.length ds);
            List.iter (fun (_, _, v) -> Alcotest.(check int) "min" 1 v) ds)
          [ 5; 6; 7 ]);
  ]

let suites =
  [
    ("topology.connectivity_cert", cert_tests);
    ("agreement.sim_protocols", sim_protocol_tests);
  ]
