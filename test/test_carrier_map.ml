(* Tests for output complexes, carrier-preserving simplicial maps, plus
   extra property coverage for the pseudosphere algebra and serialization. *)

open Psph_topology
open Psph_model
open Pseudosphere
open Psph_agreement

let input_simplex n =
  Input_complex.simplex_of_inputs (List.init (n + 1) (fun i -> (i, i mod 2)))

(* ------------------------------------------------------------------ *)
(* Output complexes                                                    *)
(* ------------------------------------------------------------------ *)

let output_tests =
  [
    Alcotest.test_case "consensus output = disjoint monochrome simplices" `Quick
      (fun () ->
        let o = Carrier_map.consensus_output ~n:2 ~values:[ 0; 1 ] in
        Alcotest.(check (list int)) "f" [ 6; 6; 2 ] (Array.to_list (Complex.f_vector o));
        Alcotest.(check int) "two components" 2
          (List.length (Complex.connected_components o)));
    Alcotest.test_case "2-set output is connected" `Quick (fun () ->
        let o = Carrier_map.kset_output ~n:2 ~k:2 ~values:[ 0; 1; 2 ] in
        Alcotest.(check bool) "connected" true (Complex.is_connected o);
        (* every facet carries at most 2 distinct values *)
        List.iter
          (fun s ->
            let vals =
              Simplex.labels s |> List.map Value.of_label
              |> Value.Set.of_list |> Value.Set.cardinal
            in
            Alcotest.(check bool) "<=2" true (vals <= 2))
          (Complex.facets o));
    Alcotest.test_case "output complexes are chromatic" `Quick (fun () ->
        let o = Carrier_map.kset_output ~n:3 ~k:2 ~values:[ 0; 1 ] in
        List.iter
          (fun s -> Alcotest.(check bool) "chromatic" true (Simplex.is_chromatic s))
          (Complex.facets o));
    Alcotest.test_case "n-set output with n+1 values is the full pseudosphere" `Quick
      (fun () ->
        let o = Carrier_map.kset_output ~n:1 ~k:2 ~values:[ 0; 1 ] in
        let ps = Input_complex.plain ~n:1 ~values:[ 0; 1 ] in
        Alcotest.(check bool) "equal" true (Complex.equal o ps));
  ]

(* ------------------------------------------------------------------ *)
(* Carrier-map search                                                  *)
(* ------------------------------------------------------------------ *)

let carrier_tests =
  [
    Alcotest.test_case "agrees with Decision.solve on the k-set grid" `Quick
      (fun () ->
        List.iter
          (fun (n, f, k, values) ->
            let ic = Input_complex.make ~n ~values in
            let c = Async_complex.over_inputs ~n ~f ~r:1 ic in
            Alcotest.(check bool)
              (Printf.sprintf "n=%d f=%d k=%d" n f k)
              true
              (Carrier_map.agrees_with_decision ~complex:c ~n ~k ~values))
          [
            (2, 1, 1, [ 0; 1 ]); (2, 2, 2, [ 0; 1; 2 ]); (2, 1, 2, [ 0; 1; 2 ]);
            (1, 1, 1, [ 0; 1 ]);
          ]);
    Alcotest.test_case "solutions are simplicial and carrier-preserving" `Quick
      (fun () ->
        let values = [ 0; 1; 2 ] in
        let ic = Input_complex.make ~n:2 ~values in
        let c = Async_complex.over_inputs ~n:2 ~f:1 ~r:1 ic in
        let output = Carrier_map.kset_output ~n:2 ~k:2 ~values in
        match Carrier_map.solve ~complex:c ~output ~carrier:Task.allowed () with
        | Carrier_map.Map m ->
            let mu v = Option.value ~default:v (Vertex.Map.find_opt v m) in
            Alcotest.(check bool) "simplicial" true
              (Simplicial_map.is_simplicial mu c output);
            Vertex.Map.iter
              (fun v w ->
                Alcotest.(check bool) "colour-preserving" true
                  (Vertex.pid v = Vertex.pid w);
                match w with
                | Vertex.Proc (_, l) ->
                    Alcotest.(check bool) "carrier" true
                      (List.mem (Value.of_label l) (Task.allowed v))
                | _ -> Alcotest.fail "bad output vertex")
              m
        | _ -> Alcotest.fail "expected a map");
    Alcotest.test_case "sync consensus at r=2 has a carrier map" `Quick (fun () ->
        let values = [ 0; 1 ] in
        let ic = Input_complex.make ~n:2 ~values in
        let c = Sync_complex.over_inputs ~k:1 ~r:2 ic in
        let output = Carrier_map.consensus_output ~n:2 ~values in
        match Carrier_map.solve ~complex:c ~output ~carrier:Task.allowed () with
        | Carrier_map.Map _ -> ()
        | _ -> Alcotest.fail "expected a map");
    Alcotest.test_case "IIS consensus has no carrier map (ACT direction)" `Quick
      (fun () ->
        let values = [ 0; 1 ] in
        let ic = Input_complex.make ~n:1 ~values in
        let c = Iis_complex.over_inputs ~r:1 ic in
        let output = Carrier_map.consensus_output ~n:1 ~values in
        Alcotest.(check bool) "impossible" true
          (Carrier_map.solve ~complex:c ~output ~carrier:Task.allowed ()
          = Carrier_map.Impossible));
    Alcotest.test_case "empty budget reports Unknown" `Quick (fun () ->
        let values = [ 0; 1 ] in
        let ic = Input_complex.make ~n:1 ~values in
        let c = Iis_complex.over_inputs ~r:1 ic in
        let output = Carrier_map.consensus_output ~n:1 ~values in
        Alcotest.(check bool) "unknown" true
          (Carrier_map.solve ~budget:2 ~complex:c ~output ~carrier:Task.allowed ()
          = Carrier_map.Unknown));
  ]

(* ------------------------------------------------------------------ *)
(* Random pseudosphere algebra (Lemma 4 as properties)                 *)
(* ------------------------------------------------------------------ *)

let gen_psph =
  QCheck2.Gen.(
    let* n = int_range 0 2 in
    let* value_sizes = list_repeat (n + 1) (int_range 0 3) in
    let base = Simplex.proc_simplex n in
    return
      (Psph.create ~base ~values:(fun p ->
           List.init (List.nth value_sizes p) (fun i -> Label.Int i))))

let psph_props =
  let open QCheck2 in
  [
    Test.make ~count:60 ~name:"realized facet count matches closed form" gen_psph
      (fun ps ->
        List.length (Complex.facets (Psph.realize ps)) = Psph.facet_count ps
        || Psph.is_empty ps);
    Test.make ~count:60 ~name:"simplex count matches closed form" gen_psph
      (fun ps -> Complex.num_simplices (Psph.realize ps) = Psph.simplex_count ps);
    Test.make ~count:60 ~name:"Cor 6 as a property" gen_psph (fun ps ->
        Homology.is_k_connected (Psph.realize ps) (Psph.connectivity_bound ps));
    Test.make ~count:40 ~name:"Lemma 4.3 as a property" (Gen.pair gen_psph gen_psph)
      (fun (a, b) ->
        (* only comparable when built over the same base dimension *)
        Simplex.dim (Psph.base a) <> Simplex.dim (Psph.base b)
        || Complex.equal
             (Complex.inter (Psph.realize a) (Psph.realize b))
             (Psph.realize (Psph.inter a b)));
    Test.make ~count:60 ~name:"inter is idempotent" gen_psph (fun ps ->
        Psph.equal (Psph.inter ps ps) ps);
    Test.make ~count:60 ~name:"normalize preserves the realization" gen_psph
      (fun ps -> Complex.equal (Psph.realize ps) (Psph.realize (Psph.normalize ps)));
    Test.make ~count:60 ~name:"subsumption is reflexive" gen_psph (fun ps ->
        Psph.subsumes ps ps);
  ]
  |> List.map QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Serialization round-trip property                                   *)
(* ------------------------------------------------------------------ *)

let io_props =
  let open QCheck2 in
  let gen_complex =
    Gen.(
      let facet = list_size (int_range 1 4) (int_range 0 6) in
      list_size (int_range 1 6) facet
      |> map (fun fs ->
             Complex.of_facets
               (List.map (fun l -> Simplex.of_list (List.map Vertex.anon l)) fs)))
  in
  [
    Test.make ~count:80 ~name:"complex serialization round-trips" gen_complex
      (fun c ->
        Complex.equal c (Complex_io.complex_of_string (Complex_io.complex_to_string c)));
    Test.make ~count:80 ~name:"pseudosphere serialization round-trips" gen_psph
      (fun ps ->
        let c = Psph.realize ps in
        Complex.equal c (Complex_io.complex_of_string (Complex_io.complex_to_string c)));
  ]
  |> List.map QCheck_alcotest.to_alcotest

let integration_tests =
  [
    Alcotest.test_case "carrier map on the one-round sync complex" `Quick
      (fun () ->
        (* Theorem 18 via carrier maps: no consensus map at r = 1 *)
        let values = [ 0; 1 ] in
        let ic = Input_complex.make ~n:2 ~values in
        let c = Sync_complex.over_inputs ~k:1 ~r:1 ic in
        let output = Carrier_map.consensus_output ~n:2 ~values in
        Alcotest.(check bool) "impossible" true
          (Carrier_map.solve ~complex:c ~output ~carrier:Task.allowed ()
          = Carrier_map.Impossible));
    Alcotest.test_case "input simplex of mixed values" `Quick (fun () ->
        let s = input_simplex 3 in
        Alcotest.(check int) "dim" 3 (Simplex.dim s);
        Alcotest.(check bool) "chromatic" true (Simplex.is_chromatic s));
  ]

let suites =
  [
    ("agreement.output_complex", output_tests);
    ("agreement.carrier_map", carrier_tests);
    ("core.psph_properties", psph_props);
    ("topology.io_properties", io_props);
    ("agreement.carrier_integration", integration_tests);
  ]
