(* Edge-case and small-API coverage: printers, orderings, misc helpers,
   and a few cross-module properties not covered elsewhere. *)

open Psph_topology
open Psph_model
open Pseudosphere

let v = Vertex.anon

let sx l = Simplex.of_list (List.map v l)

let misc_tests =
  [
    Alcotest.test_case "failure pattern ordering is reverse-lex" `Quick (fun () ->
        let a = Failure.pattern [ (0, 2) ] and b = Failure.pattern [ (0, 1) ] in
        Alcotest.(check bool) "later microround first" true
          (Failure.compare_pattern a b < 0));
    Alcotest.test_case "pattern pretty printer" `Quick (fun () ->
        let p = Failure.pattern [ (0, 2); (2, 1) ] in
        Alcotest.(check string) "pp" "{P0@2,P2@1}"
          (Format.asprintf "%a" Failure.pp_pattern p));
    Alcotest.test_case "psph printer mentions base and values" `Quick (fun () ->
        let s = Format.asprintf "%a" Psph.pp (Psph.binary 1) in
        Alcotest.(check bool) "has psi" true (String.length s > 5));
    Alcotest.test_case "simplex printer" `Quick (fun () ->
        Alcotest.(check string) "pp" "{v0 v1}" (Format.asprintf "%a" Simplex.pp (sx [ 0; 1 ])));
    Alcotest.test_case "complex summary printer" `Quick (fun () ->
        let s = Format.asprintf "%a" Complex.pp_summary (Constructions.sphere 1) in
        Alcotest.(check string) "summary" "dim=1 f=(3,3) chi=0" s);
    Alcotest.test_case "view printer is total" `Quick (fun () ->
        let view =
          View.timed_round ~p:2 ~prev:(View.init 1) ~heard:[ (0, 2, View.init 0) ]
        in
        Alcotest.(check bool) "prints" true
          (String.length (Format.asprintf "%a" View.pp view) > 0));
    Alcotest.test_case "observations_before is a strict cutoff" `Quick (fun () ->
        let cfg = { Sim.c1 = 1; c2 = 1; d = 2 } in
        let trace = Sim.run cfg ~n:1 (Sim.lockstep cfg) ~until:6 in
        let before_3 = Sim.observations_before trace 0 3 in
        List.iter
          (function
            | Sim.Stepped { time; _ } | Sim.Received { time; _ } ->
                Alcotest.(check bool) "< 3" true (time < 3))
          before_3);
    Alcotest.test_case "run_async_with counts rounds" `Quick (fun () ->
        let open Psph_agreement in
        let all = Pid.universe 1 in
        let schedule ~round:_ =
          List.fold_left (fun m q -> Pid.Map.add q all m) Pid.Map.empty (Pid.all 1)
        in
        let report =
          Runner.run_async_with
            ~protocol:(Protocol.decide_after_rounds 2)
            ~inputs:[ (0, 5); (1, 3) ] ~schedule ~rounds:4
        in
        Alcotest.(check int) "rounds used" 2 report.Runner.rounds_used;
        List.iter (fun (_, _, value) -> Alcotest.(check int) "min" 3 value)
          report.Runner.decisions);
    Alcotest.test_case "uncertainty and microrounds interplay" `Quick (fun () ->
        let cfg = { Sim.c1 = 2; c2 = 6; d = 7 } in
        Alcotest.(check int) "p=ceil(7/2)" 4 (Sim.microrounds cfg);
        Alcotest.(check (float 0.001)) "C=3" 3.0 (Sim.uncertainty cfg));
    Alcotest.test_case "input complex plain vs view-labelled sizes" `Quick
      (fun () ->
        let a = Input_complex.make ~n:2 ~values:[ 0; 1 ] in
        let b = Input_complex.plain ~n:2 ~values:[ 0; 1 ] in
        Alcotest.(check (list int))
          "same f-vector"
          (Array.to_list (Complex.f_vector a))
          (Array.to_list (Complex.f_vector b)));
    Alcotest.test_case "theorem18 edge: k > f" `Quick (fun () ->
        (* floor(f/k) = 0: one round when n > f + k, zero when n <= f+k *)
        Alcotest.(check int) "n>f+k" 1 (Sync_complex.theorem18_lower_bound ~n:5 ~f:1 ~k:2);
        Alcotest.(check int) "n<=f+k" 0 (Sync_complex.theorem18_lower_bound ~n:3 ~f:1 ~k:2));
    Alcotest.test_case "corollary22 at k >= f degenerates" `Quick (fun () ->
        (* r = ceil(f/k) - 1 = 0: the bound is just Cd *)
        Alcotest.(check (float 0.001)) "Cd" 20.0
          (Semi_sync_complex.corollary22_time ~f:1 ~k:1 ~c1:1 ~c2:2 ~d:10));
  ]

let property_tests =
  let open QCheck2 in
  [
    Test.make ~count:50 ~name:"SNF rank >= Z/2 rank of the same matrix"
      Gen.(
        list_size (int_range 1 4) (list_size (int_range 1 4) (int_range (-3) 3)))
      (fun rows ->
        let cols = List.fold_left max 0 (List.map List.length rows) in
        let m =
          Array.of_list
            (List.map
               (fun r ->
                 Array.init cols (fun i ->
                     match List.nth_opt r i with Some x -> x | None -> 0))
               rows)
        in
        (* mod-2 columns *)
        let z2_cols =
          List.init cols (fun j ->
              Array.to_list m
              |> List.mapi (fun i row -> (i, row.(j)))
              |> List.filter_map (fun (i, x) ->
                     if (x mod 2 + 2) mod 2 = 1 then Some i else None))
        in
        Snf.rank m >= Z2_matrix.rank z2_cols);
    Test.make ~count:50 ~name:"join with a point is a cone (betti trivial)"
      Gen.(
        list_size (int_range 1 4) (list_size (int_range 1 3) (int_range 0 5))
        |> map (fun fs ->
               Complex.of_facets
                 (List.map (fun l -> Simplex.of_list (List.map Vertex.anon l)) fs)))
      (fun c ->
        if Complex.is_empty c then true
        else begin
          let cone = Constructions.cone ~apex:(Vertex.anon 99) c in
          let b = Homology.reduced_betti cone in
          Array.for_all (fun x -> x = 0) b
        end);
    Test.make ~count:40 ~name:"schedule counts: sync closed form"
      Gen.(pair (int_range 1 3) (int_range 1 2))
      (fun (n, k) ->
        List.length (Round_schedule.sync_schedules ~k ~alive:(Pid.universe n))
        = Round_schedule.sync_count ~k ~alive_count:(n + 1));
    Test.make ~count:30 ~name:"semi schedule counts closed form"
      Gen.(pair (int_range 1 2) (int_range 2 3))
      (fun (n, p) ->
        List.length (Round_schedule.semi_schedules ~k:1 ~p ~n ~alive:(Pid.universe n))
        = Round_schedule.semi_count ~k:1 ~p ~alive_count:(n + 1));
    Test.make ~count:30 ~name:"random traces validate (with crashes)"
      Gen.(int_range 0 1000)
      (fun seed ->
        let cfg = { Sim.c1 = 1; c2 = 4; d = 5 } in
        let adv = Random_adversary.make ~seed ~crash_probability:0.5 cfg ~n:2 in
        Trace_check.validate cfg (Sim.run cfg ~n:2 adv ~until:40) = []);
  ]
  |> List.map QCheck_alcotest.to_alcotest

let suites =
  [ ("coverage.misc", misc_tests); ("coverage.properties", property_tests) ]
