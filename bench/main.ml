(* Bechamel micro-benchmarks: one Test.make per experiment of the paper
   (figures F1-F3 and results L4-C22), plus the substrate operations they
   rely on.  Prints OLS time estimates (ns/run).

   Run with: dune exec bench/main.exe            (default 0.5s/test quota)
             dune exec bench/main.exe -- 0.1     (faster, rougher)
             dune exec bench/main.exe -- net     (only the network matrix) *)

open Bechamel
open Toolkit
open Psph_obs
open Psph_topology
open Psph_model
open Pseudosphere
open Psph_agreement

let inputs n = List.init (n + 1) (fun i -> (i, i mod 2))

let input_simplex n = Input_complex.simplex_of_inputs (inputs n)

let t name f = Test.make ~name (Staged.stage f)

(* Wall-time one named phase through the Obs substrate: the run is one
   observation in a [bench.<name>] histogram and the reported number is
   that histogram's sum — the bench reads back what the instrumentation
   recorded rather than keeping private timing state.  Each phase name is
   used exactly once per process, so sum = the single run's duration. *)
let timed name f =
  let h = Obs.histogram ("bench." ^ name) in
  let x = Obs.time h f in
  (x, (Obs.histogram_stats h).Obs.sum)

let phase name f = snd (timed name f)

(* Every BENCH_*.json artifact lands via tmp + rename: CI uploads whatever
   files exist, so a bench that dies mid-write must never leave a
   half-written JSON behind a complete-looking name. *)
let write_json path f =
  Jsonl.write_atomic path f;
  print_endline ("wrote " ^ path)

(* ------------------------------------------------------------------ *)
(* figure benches                                                      *)
(* ------------------------------------------------------------------ *)

let fig_tests =
  [
    t "F1: build psi(P^2;{0,1})" (fun () ->
        Psph.realize ~vertex:Psph.default_vertex (Psph.binary 2));
    t "F1: betti of psi(P^2;{0,1})" (fun () ->
        Homology.betti (Psph.realize ~vertex:Psph.default_vertex (Psph.binary 2)));
    t "F2: build psi(P^1;{0,1}) and psi(P^0;{0,1,2})" (fun () ->
        let a =
          Psph.realize ~vertex:Psph.default_vertex
            (Psph.uniform ~base:(Simplex.proc_simplex 1) [ Label.Int 0; Label.Int 1 ])
        in
        let b =
          Psph.realize ~vertex:Psph.default_vertex
            (Psph.uniform ~base:(Simplex.proc_simplex 0)
               [ Label.Int 0; Label.Int 1; Label.Int 2 ])
        in
        (a, b));
    t "F3: build S^1(S^2) k=1" (fun () -> Sync_complex.one_round ~k:1 (input_simplex 2));
  ]

(* ------------------------------------------------------------------ *)
(* pseudosphere algebra and connectivity                               *)
(* ------------------------------------------------------------------ *)

let psph_tests =
  let base = Simplex.proc_simplex 2 in
  let a = Psph.uniform ~base [ Label.Int 0; Label.Int 1 ] in
  let b = Psph.uniform ~base [ Label.Int 1; Label.Int 2 ] in
  [
    t "L4: symbolic intersection" (fun () -> Psph.inter a b);
    t "C6: connectivity of psi(P^3;{0,1})" (fun () ->
        Homology.connectivity (Psph.realize ~vertex:Psph.default_vertex (Psph.binary 3)));
    t "psph: realize binary n=4 (2^5 facets)" (fun () ->
        Psph.realize ~vertex:Psph.default_vertex
          (Psph.uniform ~base:(Simplex.proc_simplex 4) [ Label.Int 0; Label.Int 1 ]));
  ]

(* ------------------------------------------------------------------ *)
(* asynchronous model                                                  *)
(* ------------------------------------------------------------------ *)

let async_tests =
  [
    t "L11: build A^1(S^2) f=1" (fun () -> Async_complex.one_round ~n:2 ~f:1 (input_simplex 2));
    t "L11: build A^1(S^3) f=1" (fun () -> Async_complex.one_round ~n:3 ~f:1 (input_simplex 3));
    t "L11: verify the explicit isomorphism (n=2 f=1)" (fun () ->
        Async_complex.lemma11_holds ~n:2 ~f:1 (input_simplex 2));
    t "L11: enumerate all one-round async executions (n=2 f=1)" (fun () ->
        Enumerated.async ~n:2 ~f:1 ~r:1 (inputs 2));
    t "L12: build A^2(S^2) f=1" (fun () ->
        Async_complex.rounds ~n:2 ~f:1 ~r:2 (input_simplex 2));
    t "L12: connectivity of A^2(S^2) f=1" (fun () ->
        Homology.is_k_connected (Async_complex.rounds ~n:2 ~f:1 ~r:2 (input_simplex 2)) 0);
    t "C13: decision search, async consensus r=1 (impossible)" (fun () ->
        Decision.solve
          ~complex:
            (Async_complex.over_inputs ~n:2 ~f:1 ~r:1
               (Input_complex.make ~n:2 ~values:[ 0; 1 ]))
          ~allowed:Task.allowed ~k:1 ());
  ]

(* ------------------------------------------------------------------ *)
(* synchronous model                                                   *)
(* ------------------------------------------------------------------ *)

let sync_tests =
  [
    t "L14: build S^1_K(S^3), |K|=1" (fun () ->
        Sync_complex.one_round_failing (input_simplex 3) (Pid.Set.singleton 0));
    t "L15: verify the intersection identity (n=2, full prefix)" (fun () ->
        Sync_complex.lemma15_holds (input_simplex 2)
          (Failure.subsets_of_size_at_most (Pid.Set.of_list [ 0; 1; 2 ]) 1));
    t "L16: build + connectivity of S^1(S^3) k=1" (fun () ->
        Homology.is_k_connected (Sync_complex.one_round ~k:1 (input_simplex 3)) 0);
    t "L17: build S^2(S^3) k=1" (fun () ->
        Sync_complex.rounds ~k:1 ~r:2 (input_simplex 3));
    t "T18: flooding consensus, exhaustive verification (n=2 f=1)" (fun () ->
        Runner.check_sync_exhaustive
          ~protocol:(Protocols.flood_consensus ~f:1)
          ~k_task:1 ~total_crashes:1 ~inputs:(inputs 2) ~max_rounds:3);
    t "T18: decision search, sync consensus r=1 (impossible)" (fun () ->
        Decision.solve
          ~complex:
            (Sync_complex.over_inputs ~k:1 ~r:1 (Input_complex.make ~n:2 ~values:[ 0; 1 ]))
          ~allowed:Task.allowed ~k:1 ());
  ]

(* ------------------------------------------------------------------ *)
(* semi-synchronous model                                              *)
(* ------------------------------------------------------------------ *)

let semi_tests =
  let cfg = { Sim.c1 = 1; c2 = 3; d = 3 } in
  [
    t "L19: build M^1_{K,F}(S^2) p=2" (fun () ->
        Semi_sync_complex.one_round_pattern ~p:2 ~n:2 (input_simplex 2)
          (Failure.pattern [ (2, 1) ]));
    t "L20: verify the intersection identity (n=2 k=1 p=2)" (fun () ->
        let pats =
          Semi_sync_complex.pseudospheres ~k:1 ~p:2 ~n:2 (input_simplex 2)
          |> List.map fst
        in
        Semi_sync_complex.lemma20_holds ~p:2 ~n:2 (input_simplex 2) pats);
    t "L21: build + connectivity of M^1(S^2) k=1 p=2" (fun () ->
        Homology.is_k_connected
          (Semi_sync_complex.one_round ~k:1 ~p:2 ~n:2 (input_simplex 2))
          0);
    t "C22: timed simulation, 3 procs, 10 rounds" (fun () ->
        Sim.run cfg ~n:2 (Sim.lockstep cfg) ~until:(10 * cfg.Sim.d));
    t "C22: stretch indistinguishability check" (fun () ->
        let after_step = Sim.microrounds cfg in
        let solo =
          Sim.run cfg ~n:2 (Sim.slow_solo cfg ~survivor:0 ~after_step) ~until:30
        in
        let fast = Sim.run cfg ~n:2 (Sim.lockstep cfg) ~until:30 in
        Sim.indistinguishable_to 0 (solo, 12) (fast, 6));
    t "C22: timeout protocol decision times" (fun () ->
        Sim.decision_time cfg ~n:2 (Sim.lockstep cfg)
          ~protocol:(Protocols.semi_sync_consensus ~f:1)
          ~inputs:(inputs 2) ~horizon:30);
  ]

(* ------------------------------------------------------------------ *)
(* Mayer-Vietoris and Sperner machinery                                *)
(* ------------------------------------------------------------------ *)

let mv_tests =
  [
    t "T2: MV derivation for S^1(S^2) k=1" (fun () ->
        Mayer_vietoris.union_connectivity
          (List.map snd (Sync_complex.pseudospheres ~k:1 (input_simplex 2))));
    t "T2: MV derivation for S^1(S^3) k=1" (fun () ->
        Mayer_vietoris.union_connectivity
          (List.map snd (Sync_complex.pseudospheres ~k:1 (input_simplex 3))));
    t "T2: MV derivation for M^1(S^2) k=1 p=2" (fun () ->
        Mayer_vietoris.union_connectivity
          (List.map snd (Semi_sync_complex.pseudospheres ~k:1 ~p:2 ~n:2 (input_simplex 2))));
    t "T9: Sperner count on sd^2(triangle)" (fun () ->
        let base = Simplex.of_list [ Vertex.anon 0; Vertex.anon 1; Vertex.anon 2 ] in
        let allowed = Sperner.barycentric_allowed base in
        let chi v = List.fold_left min max_int (allowed v) in
        Sperner.count_panchromatic chi 2
          (Subdivision.barycentric_iter 2 (Complex.of_simplex base)));
  ]

(* ------------------------------------------------------------------ *)
(* substrate                                                           *)
(* ------------------------------------------------------------------ *)

let substrate_tests =
  let big = Psph.realize ~vertex:Psph.default_vertex (Psph.binary 3) in
  let torus =
    Complex.of_facets
      (List.concat_map
         (fun i ->
           [ Simplex.of_list (List.map Vertex.anon [ i; (i + 1) mod 7; (i + 3) mod 7 ]);
             Simplex.of_list (List.map Vertex.anon [ i; (i + 2) mod 7; (i + 3) mod 7 ]) ])
         [ 0; 1; 2; 3; 4; 5; 6 ])
  in
  [
    t "substrate: Z/2 homology of the torus" (fun () -> Homology.betti torus);
    t "substrate: collapse of a solid 5-simplex" (fun () ->
        Collapse.collapse (Complex.of_simplex (Simplex.proc_simplex 5)));
    t "substrate: barycentric subdivision of the octahedron" (fun () ->
        Subdivision.barycentric big);
    t "substrate: chromatic subdivision of P^3" (fun () ->
        Subdivision.chromatic_of_simplex (Simplex.proc_simplex 3));
    t "substrate: facets of psi(P^3;{0,1})" (fun () -> Complex.facets big);
    t "substrate: isomorphism search on the octahedron" (fun () ->
        let oct = Psph.realize ~vertex:Psph.default_vertex (Psph.binary 2) in
        Simplicial_map.are_isomorphic ~respect_pids:false oct
          (Complex.map
             (function Vertex.Proc (p, l) -> Vertex.Proc (p + 1, l) | v -> v)
             oct));
  ]

(* ------------------------------------------------------------------ *)
(* ablations and extensions                                            *)
(* ------------------------------------------------------------------ *)

let ablation_tests =
  let pss4 = List.map snd (Sync_complex.pseudospheres ~k:1 (input_simplex 3)) in
  let dec_complex =
    Sync_complex.over_inputs ~k:1 ~r:1 (Input_complex.make ~n:2 ~values:[ 0; 1 ])
  in
  let a2 = Async_complex.rounds ~n:2 ~f:1 ~r:2 (input_simplex 2) in
  [
    t "ablation: MV with subsumption pruning (S^1(S^3))" (fun () ->
        Mayer_vietoris.union_connectivity pss4);
    t "ablation: MV without pruning (S^1(S^3))" (fun () ->
        Mayer_vietoris.union_connectivity ~prune_subsumed:false pss4);
    t "ablation: decision search with forward checking" (fun () ->
        Decision.solve ~complex:dec_complex ~allowed:Task.allowed ~k:1 ());
    t "ablation: decision search without forward checking" (fun () ->
        Decision.solve ~forward_check:false ~complex:dec_complex
          ~allowed:Task.allowed ~k:1 ());
    t "ablation: direct Z/2 homology of A^2(S^2)" (fun () ->
        Homology.reduced_betti ~max_dim:1 a2);
    t "ablation: collapse then Z/2 homology of A^2(S^2)" (fun () ->
        Homology.reduced_betti ~max_dim:1 (Collapse.collapse a2));
  ]

let extension_tests =
  let cfg = { Sim.c1 = 1; c2 = 3; d = 3 } in
  [
    t "ext: IIS one-round complex (13 facets)" (fun () ->
        Iis_complex.one_round (input_simplex 2));
    t "ext: IIS vs chromatic subdivision isomorphism" (fun () ->
        Iis_complex.isomorphic_to_chromatic (input_simplex 2));
    t "ext: SVG rendering of the octahedron" (fun () ->
        Render.svg (Psph.realize ~vertex:Psph.default_vertex (Psph.binary 2)));
    t "ext: complex serialization round-trip (S^1(S^2))" (fun () ->
        let c = Sync_complex.one_round ~k:1 (input_simplex 2) in
        Complex_io.complex_of_string (Complex_io.complex_to_string c));
    t "ext: RRFD async structure = A^1 (n=2 f=1)" (fun () ->
        Rrfd.agrees_with_async ~n:2 ~f:1 (input_simplex 2));
    t "ext: synchronizer, 4 procs, 3 rounds" (fun () ->
        Synchronizer.run ~n:3 ~rounds:3 ~max_delay:5
          ~delays:(fun ~src ~dst ~round -> 1 + ((src + dst + round) mod 5))
          ~inputs:(inputs 3));
    t "ext: integral homology (SNF) of S^1(S^2)" (fun () ->
        Homology_z.homology (Sync_complex.one_round ~k:1 (input_simplex 2)));
    t "ext: shelling search on the octahedron" (fun () ->
        Shelling.find_shelling
          (Psph.realize ~vertex:Psph.default_vertex (Psph.binary 2)));
    t "ext: trace validation of a 10-round run" (fun () ->
        Trace_check.validate cfg (Sim.run cfg ~n:2 (Sim.lockstep cfg) ~until:30));
    t "ext: early-deciding consensus, exhaustive check (n=2 f=1)" (fun () ->
        Runner.check_sync_exhaustive
          ~protocol:(Protocols.early_deciding_consensus ~n:2 ~f:1)
          ~k_task:1 ~total_crashes:1 ~inputs:(inputs 2) ~max_rounds:3);
    t "ext: carrier-map search (async consensus, impossible)" (fun () ->
        let ic = Input_complex.make ~n:2 ~values:[ 0; 1 ] in
        let c = Async_complex.over_inputs ~n:2 ~f:1 ~r:1 ic in
        Carrier_map.solve ~complex:c
          ~output:(Carrier_map.consensus_output ~n:2 ~values:[ 0; 1 ])
          ~carrier:Task.allowed ());
    t "ext: connectivity certificate for S^1(S^2)" (fun () ->
        Connectivity.certify (Sync_complex.one_round ~k:1 (input_simplex 2)));
    t "ext: knowledge: common knowledge sweep on S^1(S^2)" (fun () ->
        let c = Sync_complex.one_round ~k:1 (input_simplex 2) in
        let fact = Knowledge.fact_value_present 0 in
        List.map (fun f -> Knowledge.common_knowledge_at c f fact) (Complex.facets c));
  ]

(* ------------------------------------------------------------------ *)
(* model registry: every registered model, benched generically         *)
(* ------------------------------------------------------------------ *)

let registry_tests =
  Model_complex.all ()
  |> List.concat_map (fun ((module M : Model_complex.MODEL) as m) ->
         let spec =
           match M.validate { Model_complex.default_spec with n = 2 } with
           | Ok spec -> spec
           | Error msg -> failwith (M.name ^ ": " ^ msg)
         in
         let s = input_simplex 2 in
         [
           t
             (Printf.sprintf "registry: %s one round (%s)" M.name
                (Model_complex.encode m spec))
             (fun () -> M.one_round spec s);
           t
             (Printf.sprintf "registry: %s connectivity r=1" M.name)
             (fun () -> Homology.connectivity (M.rounds spec s));
         ])

(* ------------------------------------------------------------------ *)
(* homology engine: the scale frontier                                 *)
(* ------------------------------------------------------------------ *)

(* S^2(S^4): 5 processes, 2 synchronous rounds, k = 1 — 6371 simplices.
   Under the list-based engine this construction and its connectivity
   check were out of reach in practice; the interned, bit-packed pipeline
   handles both in well under a second. *)
let engine_tests =
  let s4 = input_simplex 4 in
  [
    t "engine: build S^2(S^4) k=1 (n=5, r=2)" (fun () ->
        Sync_complex.rounds ~k:1 ~r:2 s4);
    t "engine: connectivity of S^2(S^4) k=1 (n=5, r=2)" (fun () ->
        Homology.is_k_connected (Sync_complex.rounds ~k:1 ~r:2 s4) 0);
  ]

(* ------------------------------------------------------------------ *)
(* parameter sweeps: scaling in n for the core constructions           *)
(* ------------------------------------------------------------------ *)

let sweep_tests =
  let build_sweep name f ns =
    List.map (fun n -> t (Printf.sprintf "sweep: %s n=%d" name n) (fun () -> f n)) ns
  in
  build_sweep "A^1 f=1 construction" (fun n ->
      Async_complex.one_round ~n ~f:1 (input_simplex n))
    [ 1; 2; 3 ]
  @ build_sweep "S^1 k=1 construction" (fun n ->
        Sync_complex.one_round ~k:1 (input_simplex n))
      [ 2; 3; 4 ]
  @ build_sweep "M^1 k=1 p=2 construction" (fun n ->
        Semi_sync_complex.one_round ~k:1 ~p:2 ~n (input_simplex n))
      [ 1; 2; 3 ]
  @ build_sweep "S^1 k=1 homological connectivity" (fun n ->
        Homology.is_k_connected (Sync_complex.one_round ~k:1 (input_simplex n)) 0)
      [ 2; 3; 4 ]
  @ build_sweep "binary pseudosphere realization" (fun n ->
        Psph.realize ~vertex:Psph.default_vertex (Psph.binary n))
      [ 2; 3; 4; 5 ]
  @ build_sweep "MV derivation for S^1 k=1" (fun n ->
        Mayer_vietoris.union_connectivity
          (List.map snd (Sync_complex.pseudospheres ~k:1 (input_simplex n))))
      [ 2; 3; 4 ]

(* ------------------------------------------------------------------ *)
(* tiered solver: symbolic derivations vs Morse-reduced elimination    *)
(* ------------------------------------------------------------------ *)

(* Reference points for the two connectivity tiers.  The symbolic rows
   answer union queries at n = 6..8 — sizes where realizing the complex
   (let alone eliminating its boundary matrices) is out of reach — in
   O(formula); the numeric rows put a number on what the Morse
   precollapse saves at a size the numeric tier still handles. *)
let solver_tests =
  let sync61 = { Model_complex.n = 6; f = 3; k = 1; p = 2; r = 1; ext = [] } in
  let sync63 = { Model_complex.n = 6; f = 3; k = 1; p = 2; r = 3; ext = [] } in
  let semi81 = { Model_complex.n = 8; f = 1; k = 1; p = 2; r = 1; ext = [] } in
  [
    t "solver: symbolic sync n=6 r=1 (Theorem 2 + Corollary 6)" (fun () ->
        Solver.symbolic_model (Model_complex.get "sync") sync61);
    t "solver: symbolic sync n=6 r=3 (round lemma)" (fun () ->
        Solver.symbolic_model (Model_complex.get "sync") sync63);
    t "solver: symbolic semi n=8 r=1 (Theorem 2 + Corollary 6)" (fun () ->
        Solver.symbolic_model (Model_complex.get "semi") semi81);
    t "solver: symbolic psph n=8 values=4 (Corollary 6)" (fun () ->
        Solver.symbolic_psph ~n:8 ~values:4);
    t "solver: numeric sync n=3 r=1 connectivity, Morse-reduced" (fun () ->
        Homology.connectivity_reduced (Sync_complex.rounds ~k:1 ~r:1 (input_simplex 3)));
    t "solver: numeric sync n=3 r=1 connectivity, no precollapse" (fun () ->
        Homology.connectivity (Sync_complex.rounds ~k:1 ~r:1 (input_simplex 3)));
  ]

(* ------------------------------------------------------------------ *)
(* query-engine throughput: batch of mixed repeated queries            *)
(* ------------------------------------------------------------------ *)

(* Not a bechamel microbench: the unit of interest is a whole batch of 200
   queries drawn from 8 recurring shapes (25 repeats each), served three
   ways — naive sequential recomputation (build + betti + connectivity
   from scratch, what the CLI did per invocation), the engine with a cold
   cache (misses, parallel evaluation), and the engine warm (every query a
   cache hit).  Results go to BENCH_engine.json next to the bechamel
   table's BENCH_homology.json. *)
let engine_bench () =
  let module E = Psph_engine.Engine in
  let shapes =
    [
      E.Psph { n = 2; values = 2 };
      E.Psph { n = 3; values = 2 };
      E.Psph { n = 2; values = 3 };
      E.Psph { n = 4; values = 2 };
      E.Psph { n = 5; values = 2 };
      E.Model
        { model = "sync"; params = { Model_complex.default_spec with n = 3 } };
      E.Model { model = "async"; params = Model_complex.default_spec };
      E.Model { model = "semi"; params = Model_complex.default_spec };
    ]
  in
  let nshapes = List.length shapes in
  let batch_size = 200 in
  let batch =
    List.init batch_size (fun i -> List.nth shapes (i mod nshapes))
  in
  let naive_s =
    phase "engine.naive" (fun () ->
        List.iter
          (fun spec ->
            let c = E.build spec in
            ignore (Homology.betti c);
            ignore (Homology.connectivity c))
          batch)
  in
  let domains = min 4 (max 2 (Domain.recommended_domain_count () - 1)) in
  let engine = E.create ~domains ~capacity:1024 () in
  let cold_s = phase "engine.cold" (fun () -> ignore (E.eval_batch engine batch)) in
  let warm_s = phase "engine.warm" (fun () -> ignore (E.eval_batch engine batch)) in
  let stats = E.stats engine in
  E.shutdown engine;
  let speedup_cold = naive_s /. cold_s and speedup_warm = naive_s /. warm_s in
  Format.printf
    "@.engine throughput (batch of %d queries, %d shapes, %d domains):@." batch_size
    nshapes domains;
  Format.printf "  naive sequential  %8.1f ms   %8.0f q/s@." (1000. *. naive_s)
    (float_of_int batch_size /. naive_s);
  Format.printf "  engine cold       %8.1f ms   %8.0f q/s   %5.2fx@."
    (1000. *. cold_s)
    (float_of_int batch_size /. cold_s)
    speedup_cold;
  Format.printf "  engine warm       %8.1f ms   %8.0f q/s   %5.2fx@."
    (1000. *. warm_s)
    (float_of_int batch_size /. warm_s)
    speedup_warm;
  Format.printf "  cache: %d hits, %d misses, %d evictions; %d pool jobs@."
    stats.E.hits stats.E.misses stats.E.evictions stats.E.jobs;
  write_json "BENCH_engine.json" @@ fun oc ->
  Printf.fprintf oc
    "{\n\
    \  \"batch_size\": %d,\n\
    \  \"distinct_shapes\": %d,\n\
    \  \"domains\": %d,\n\
    \  \"naive_s\": %.6f,\n\
    \  \"engine_cold_s\": %.6f,\n\
    \  \"engine_warm_s\": %.6f,\n\
    \  \"speedup_cold\": %.2f,\n\
    \  \"speedup_warm\": %.2f,\n\
    \  \"naive_qps\": %.1f,\n\
    \  \"warm_qps\": %.1f,\n\
    \  \"hits\": %d,\n\
    \  \"misses\": %d,\n\
    \  \"evictions\": %d,\n\
    \  \"jobs\": %d\n\
     }\n"
    batch_size nshapes domains naive_s cold_s warm_s speedup_cold speedup_warm
    (float_of_int batch_size /. naive_s)
    (float_of_int batch_size /. warm_s)
    stats.E.hits stats.E.misses stats.E.evictions stats.E.jobs

(* Per registered model and n in {2, 3}, wall-time the r=1 and r=2
   protocol-complex builds plus both connectivity tiers on the r=1 query —
   numeric (Morse-reduced elimination on the built complex) and symbolic
   (the solver derivation, which never builds it) — and write
   BENCH_models.json: the per-model, per-tier perf trajectory successive
   PRs can diff, generated from the registry so a newly registered model
   shows up with zero bench edits. *)
let models_bench () =
  let sweeps =
    [ 2; 3 ]
    |> List.map (fun n ->
           let s = input_simplex n in
           let rows =
             Model_complex.all ()
             |> List.map (fun ((module M : Model_complex.MODEL) as m) ->
                    let spec r =
                      match
                        M.validate { Model_complex.default_spec with n; r }
                      with
                      | Ok spec -> spec
                      | Error msg -> failwith (M.name ^ ": " ^ msg)
                    in
                    let timed_m p f =
                      timed (Printf.sprintf "model.%s.n%d.%s" M.name n p) f
                    in
                    let c1, r1_s = timed_m "r1" (fun () -> M.rounds (spec 1) s) in
                    let conn, conn_s =
                      timed_m "conn" (fun () -> Homology.connectivity_reduced c1)
                    in
                    let sym, sym_s =
                      timed_m "symbolic" (fun () -> Solver.symbolic_model m (spec 1))
                    in
                    (* a second round multiplies the facet count by the
                       per-facet branch fan-out, so gate it on the r=1
                       size: an adversary with a huge choice space (dyn at
                       n=3: 4096 digraphs per facet per round) records
                       null instead of stalling the sweep *)
                    let r2 =
                      if List.length (Complex.facets c1) > 1024 then None
                      else begin
                        let c2, r2_s = timed_m "r2" (fun () -> M.rounds (spec 2) s) in
                        Some (r2_s, Complex.num_simplices c2)
                      end
                    in
                    (M.name, r1_s, conn_s, conn, Complex.num_simplices c1, r2,
                     sym_s, sym))
           in
           (n, rows))
  in
  List.iter
    (fun (n, rows) ->
      Format.printf "@.per-model build and solver-tier times (n=%d):@." n;
      List.iter
        (fun (name, r1_s, conn_s, conn, n1, r2, sym_s, sym) ->
          Format.printf
            "  %-6s r=1 %8.2f ms (%5d simplices, conn %d numeric %.2f ms, \
             symbolic %s in %.3f ms)   r=2 %s@."
            name (1000. *. r1_s) n1 conn (1000. *. conn_s)
            (match sym with
            | Some s -> Printf.sprintf ">= %d" s.Solver.connectivity
            | None -> "n/a")
            (1000. *. sym_s)
            (match r2 with
            | Some (r2_s, n2) ->
                Printf.sprintf "%8.2f ms (%6d simplices)" (1000. *. r2_s) n2
            | None -> "skipped (fan-out too large)"))
        rows)
    sweeps;
  write_json "BENCH_models.json" @@ fun oc ->
  Printf.fprintf oc "{\n  \"sweeps\": [\n";
  List.iteri
    (fun si (n, rows) ->
      Printf.fprintf oc "    { \"n\": %d, \"models\": {\n" n;
      List.iteri
        (fun i (name, r1_s, conn_s, conn, n1, r2, sym_s, sym) ->
          let sym_bound, sym_rule =
            match sym with
            | Some s ->
                (string_of_int s.Solver.connectivity,
                 Printf.sprintf "%S" s.Solver.rule)
            | None -> ("null", "null")
          in
          let r2_s, r2_n =
            match r2 with
            | Some (r2_s, n2) -> (Printf.sprintf "%.6f" r2_s, string_of_int n2)
            | None -> ("null", "null")
          in
          Printf.fprintf oc
            "      \"%s\": { \"r1_s\": %.6f, \"r1_simplices\": %d, \
             \"r1_connectivity\": %d, \"numeric_conn_s\": %.6f, \
             \"symbolic_s\": %.6f, \"symbolic_bound\": %s, \
             \"symbolic_rule\": %s, \"r2_s\": %s, \"r2_simplices\": %s }%s\n"
            name r1_s n1 conn conn_s sym_s sym_bound sym_rule r2_s r2_n
            (if i = List.length rows - 1 then "" else ","))
        rows;
      Printf.fprintf oc "    } }%s\n"
        (if si = List.length sweeps - 1 then "" else ","))
    sweeps;
  Printf.fprintf oc "  ]\n}\n"

(* Loopback TCP throughput: the framed transport end to end (client ->
   server -> Serve.handle_line -> back), measured on a warm cache so the
   number is the transport's, not homology's.  PR 6 turns this into a
   connections x pipeline-depth matrix over the v2 wire protocol: every
   client negotiates the binary codec and keeps [depth] requests in
   flight through {!Client.eval_many}, so the measured cost is frames +
   codec + reactor, with no JSON on either side of the hot path.  One
   phase per matrix point; quantiles from the raw per-request latency
   samples.  Results go to BENCH_net.json.

   Reading the latency columns: every point runs on whatever cores the
   machine has, and total in-flight = conns x depth, so by Little's law
   p99 grows with the product, not with connections per se.  The
   reactor's scaling claim is the equal-in-flight comparison (64 conns
   x depth 8 vs 16 conns x depth 32, both 512 in flight): spreading the
   same load over 4x the sockets should not cost latency. *)
let net_bench () =
  let module E = Psph_engine.Engine in
  let module Serve = Psph_engine.Serve in
  let open Psph_net in
  let engine = E.create ~domains:0 ~capacity:64 () in
  let handler = Serve.handle_line engine in
  match
    Server.listen ~handler
      ~bin_handler:(Codec.handle ~json:handler engine)
      { Addr.host = "127.0.0.1"; port = 0 }
  with
  | Error m ->
      E.shutdown engine;
      prerr_endline ("net bench skipped: " ^ m)
  | Ok srv ->
      Server.start srv;
      let addr = { Addr.host = "127.0.0.1"; port = Server.port srv } in
      (* warm: the first query computes, everything after is a cache hit *)
      let warm = Client.create addr in
      (match Client.request warm {|{"op":"psph","n":2,"values":2}|} with
      | Ok _ -> ()
      | Error e -> failwith ("net bench warm-up: " ^ Client.error_message e));
      Client.close warm;
      let query = (Codec.Both, Codec.Psph { n = 2; values = 2 }) in
      let run (conns, depth) =
        let per = max 2000 (400 * depth) in
        let lats = Array.make (conns * per) 0. in
        let wall =
          phase
            (Printf.sprintf "net.c%d_d%d" conns depth)
            (fun () ->
              let worker w =
                let c =
                  Client.create ~retries:1 ~codec:`Binary ~pipeline_depth:depth
                    addr
                in
                Client.eval_many
                  ~on_latency:(fun i s -> lats.((w * per) + i) <- s)
                  c
                  (List.init per (fun _ -> query))
                |> List.iter (function
                     | Ok _ -> ()
                     | Error e -> failwith (Client.error_message e));
                Client.close c
              in
              List.iter Thread.join
                (List.init conns (fun w -> Thread.create worker w)))
        in
        Array.sort compare lats;
        let n = Array.length lats in
        let q p = lats.(min (n - 1) (int_of_float (p *. float_of_int n))) in
        let mean = Array.fold_left ( +. ) 0. lats /. float_of_int n in
        (conns, depth, n, wall, float_of_int n /. wall, mean, q 0.5, q 0.99)
      in
      let rows =
        List.concat_map
          (fun conns -> List.map (fun depth -> run (conns, depth)) [ 1; 8; 32 ])
          [ 1; 4; 16; 64 ]
      in
      Server.stop srv;
      E.shutdown engine;
      let p99_of c d =
        let (_, _, _, _, _, _, _, p99) =
          List.find (fun (c', d', _, _, _, _, _, _) -> c' = c && d' = d) rows
        in
        p99
      in
      let best =
        List.fold_left
          (fun ((_, _, _, _, brps, _, _, _) as b)
               ((_, _, _, _, rps, _, _, _) as r) ->
            if rps > brps then r else b)
          (List.hd rows) (List.tl rows)
      in
      let (bc, bd, _, _, brps, _, _, _) = best in
      Format.printf
        "@.loopback TCP throughput (binary codec, pipelined, warm cache):@.";
      List.iter
        (fun (conns, depth, n, wall, rps, mean, p50, p99) ->
          Format.printf
            "  %2d conns x depth %2d  %7d req in %6.2f s   %8.0f req/s   \
             mean %7.3f ms   p50 %7.3f ms   p99 %7.3f ms@."
            conns depth n wall rps (1000. *. mean) (1000. *. p50)
            (1000. *. p99))
        rows;
      Format.printf "  best: %d conns x depth %d = %.0f req/s@." bc bd brps;
      Format.printf
        "  equal in-flight p99 (512): 64x8 %.3f ms vs 16x32 %.3f ms@."
        (1000. *. p99_of 64 8)
        (1000. *. p99_of 16 32);
      ( write_json "BENCH_net.json" @@ fun oc ->
      Printf.fprintf oc "{\n  \"codec\": \"binary\",\n";
      Printf.fprintf oc "  \"query\": \"psph n=2 values=2 (warm cache)\",\n";
      Printf.fprintf oc "  \"matrix\": [\n";
      List.iteri
        (fun i (conns, depth, n, wall, rps, mean, p50, p99) ->
          Printf.fprintf oc
            "    { \"conns\": %d, \"depth\": %d, \"requests\": %d, \
             \"wall_s\": %.6f, \"requests_per_s\": %.1f, \"mean_ms\": %.4f, \
             \"p50_ms\": %.4f, \"p99_ms\": %.4f }%s\n"
            conns depth n wall rps (1000. *. mean) (1000. *. p50)
            (1000. *. p99)
            (if i = List.length rows - 1 then "" else ","))
        rows;
      Printf.fprintf oc "  ],\n";
      Printf.fprintf oc
        "  \"best\": { \"conns\": %d, \"depth\": %d, \"requests_per_s\": \
         %.1f },\n"
        bc bd brps;
      Printf.fprintf oc
        "  \"p99_equal_inflight\": { \"inflight\": 512, \"c64_d8_ms\": %.4f, \
         \"c16_d32_ms\": %.4f },\n"
        (1000. *. p99_of 64 8)
        (1000. *. p99_of 16 32);
      Printf.fprintf oc
        "  \"p99_depth1_ms\": { \"c1\": %.4f, \"c64\": %.4f }\n"
        (1000. *. p99_of 1 1)
        (1000. *. p99_of 64 1);
      Printf.fprintf oc "}\n" )

(* ------------------------------------------------------------------ *)
(* cluster recovery-to-warm: snapshot warming vs cold restart          *)
(* ------------------------------------------------------------------ *)

(* The replicated tier's recovery story in one number: after a backend
   dies, how much faster does a replacement reach a warm cache by
   streaming a peer's snapshot (`psc serve --warm-from`, the same path
   the router's join rebalance uses) than by recomputing every key from
   scratch?  One peer computes K distinct keys; a "cold restart"
   recomputes them all; a "warm restart" streams the peer's snapshot
   first and then serves the same workload from cache.  Results go to
   BENCH_cluster.json. *)
let cluster_bench () =
  let module E = Psph_engine.Engine in
  let module Serve = Psph_engine.Serve in
  let open Psph_net in
  let keys = 160 in
  (* a spread of costs: 40 pseudospheres that take real compute, plus
     120 label-salted facet complexes that are cheap but distinct — the
     store treats them all as one population of content-addressed keys *)
  let heavy = 40 in
  let queries =
    List.init keys (fun i ->
        if i < heavy then
          Printf.sprintf {|{"op":"psph","n":2,"values":%d}|} (4 + i)
        else
          Printf.sprintf
            {|{"op":"betti","facets":["0:i%d ; 1:i%d","1:i%d ; 2:i%d"]}|}
            (1000 + i) (2000 + i) (2000 + i) (3000 + i))
  in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  let with_engine_server f =
    let engine = E.create ~domains:0 ~capacity:4096 () in
    let handler = Serve.handle_line engine in
    match
      Server.listen ~handler
        ~bin_handler:(Codec.handle ~json:handler engine)
        { Addr.host = "127.0.0.1"; port = 0 }
    with
    | Error m ->
        E.shutdown engine;
        failwith ("cluster bench: " ^ m)
    | Ok srv ->
        Server.start srv;
        let addr = { Addr.host = "127.0.0.1"; port = Server.port srv } in
        let r = f engine addr in
        Server.stop srv;
        E.shutdown engine;
        r
  in
  let eval_all label addr =
    let hits = ref 0 in
    let wall =
      phase label (fun () ->
          (* the deadline must cover queueing behind heavy neighbours in
             the pipeline, not just one query's own compute *)
          let c =
            Client.create ~timeout_ms:300_000 ~retries:1 ~pipeline_depth:16
              addr
          in
          List.iter
            (function
              | Ok resp -> if contains resp {|"cached":true|} then incr hits
              | Error e -> failwith (Client.error_message e))
            (Client.pipeline c queries);
          Client.close c)
    in
    (wall, !hits)
  in
  with_engine_server @@ fun _peer paddr ->
  let compute_s, _ = eval_all "cluster.compute" paddr in
  let cold_s, cold_hits =
    with_engine_server (fun _ addr -> eval_all "cluster.cold" addr)
  in
  let (entries, transfer_s), (warm_s, warm_hits) =
    with_engine_server (fun engine addr ->
        let tr =
          timed "cluster.transfer" (fun () ->
              match Replica.warm_from engine paddr with
              | Ok n -> n
              | Error m -> failwith ("warm_from: " ^ m))
        in
        (tr, eval_all "cluster.warm" addr))
  in
  let warm_total = transfer_s +. warm_s in
  let rate h = float_of_int h /. float_of_int keys in
  let speedup = cold_s /. warm_total in
  Format.printf "@.cluster recovery to warm (%d keys, psph n=2):@." keys;
  Format.printf "  peer compute        %8.3f s@." compute_s;
  Format.printf "  cold restart        %8.3f s   hit rate %.2f@." cold_s
    (rate cold_hits);
  Format.printf
    "  warm restart        %8.3f s   (transfer %.3f s, %d entries, serve \
     %.3f s)   hit rate %.2f@."
    warm_total transfer_s entries warm_s (rate warm_hits);
  Format.printf "  speedup vs cold     %8.2fx@." speedup;
  write_json "BENCH_cluster.json" @@ fun oc ->
  Printf.fprintf oc "{\n";
  Printf.fprintf oc "  \"keys\": %d,\n" keys;
  Printf.fprintf oc
    "  \"workload\": \"psph n=2 values=4..%d + %d facet complexes\",\n"
    (3 + heavy) (keys - heavy);
  Printf.fprintf oc "  \"compute_s\": %.6f,\n" compute_s;
  Printf.fprintf oc "  \"cold_restart_s\": %.6f,\n" cold_s;
  Printf.fprintf oc "  \"cold_hit_rate\": %.4f,\n" (rate cold_hits);
  Printf.fprintf oc "  \"transfer_s\": %.6f,\n" transfer_s;
  Printf.fprintf oc "  \"entries_transferred\": %d,\n" entries;
  Printf.fprintf oc "  \"warm_serve_s\": %.6f,\n" warm_s;
  Printf.fprintf oc "  \"warm_restart_s\": %.6f,\n" warm_total;
  Printf.fprintf oc "  \"warm_hit_rate\": %.4f,\n" (rate warm_hits);
  Printf.fprintf oc "  \"speedup_vs_cold\": %.3f\n" speedup;
  Printf.fprintf oc "}\n"

let () =
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "net" then (
    net_bench ();
    exit 0);
  if Array.length Sys.argv > 1 && Sys.argv.(1) = "cluster" then (
    cluster_bench ();
    exit 0);
  let quota =
    if Array.length Sys.argv > 1 then float_of_string Sys.argv.(1) else 0.5
  in
  let tests =
    fig_tests @ psph_tests @ async_tests @ sync_tests @ semi_tests @ mv_tests
    @ substrate_tests @ ablation_tests @ extension_tests @ registry_tests
    @ engine_tests @ sweep_tests @ solver_tests
  in
  let grouped = Test.make_grouped ~name:"pseudosphere" tests in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second quota) ~kde:None
      ~stabilize:true ()
  in
  let raw = Benchmark.all cfg Instance.[ monotonic_clock ] grouped in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  let rows =
    Hashtbl.fold (fun name est acc -> (name, est) :: acc) results []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  in
  Format.printf "%-75s %14s %8s@." "benchmark" "ns/run" "r^2";
  List.iter
    (fun (name, est) ->
      let time =
        match Analyze.OLS.estimates est with Some [ x ] -> x | _ -> nan
      in
      let r2 = Option.value ~default:nan (Analyze.OLS.r_square est) in
      Format.printf "%-75s %14.1f %8.4f@." name time r2)
    rows;
  (* machine-readable mirror of the table, so successive PRs can diff the
     perf trajectory: { "benchmark name": ns_per_run, ... } *)
  ( write_json "BENCH_homology.json" @@ fun oc ->
  let escape s =
    let b = Buffer.create (String.length s) in
    String.iter
      (function
        | '"' -> Buffer.add_string b "\\\""
        | '\\' -> Buffer.add_string b "\\\\"
        | c -> Buffer.add_char b c)
      s;
    Buffer.contents b
  in
  Printf.fprintf oc "{\n";
  List.iteri
    (fun i (name, est) ->
      let time =
        match Analyze.OLS.estimates est with Some [ x ] -> x | _ -> nan
      in
      let num =
        if Float.is_nan time then "null" else Printf.sprintf "%.1f" time
      in
      Printf.fprintf oc "  \"%s\": %s%s\n" (escape name) num
        (if i = List.length rows - 1 then "" else ","))
    rows;
  Printf.fprintf oc "}\n" );
  engine_bench ();
  models_bench ();
  net_bench ();
  cluster_bench ()
